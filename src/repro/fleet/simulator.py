"""Event-driven fleet simulator: a stream of jobs over many zoo machines.

This is the paper's co-run question raised one level: instead of *which
ready ops share one chip's cores* (Strategy 3/4, Tables III/VII), the
fleet simulator decides *which jobs share one machine* — using the same
predictions (hill-climbing step-time estimates) and the same generalized
interference signals.

Execution model
---------------
Each machine runs its resident jobs as **gang rounds**: all residents
advance one training step per round, and the round's duration is the
simulated step time of their merged graph under the full runtime
(:mod:`repro.fleet.estimates`).  Jobs join and leave at round
boundaries; a placement policy (:mod:`repro.fleet.policies`) assigns
arriving and queued jobs to machines.  After every co-run round the
machine records the observed pairing slowdowns into its local
:class:`~repro.core.interference.InterferenceTracker`, and the simulator
merges that round's delta into the fleet-wide tracker — so a pairing one
machine found harmful steers placements everywhere.

Round compression (the fast path)
---------------------------------
While a machine's resident mix is stable, every gang round is identical:
same duration (one memoised estimate), same interference records, same
decrements.  The reference loop still pays one heap event per round —
O(total training steps) events for the whole trace.  The compressed
path (:class:`FleetSimulator` default) instead advances
``k = min(remaining steps among residents)`` rounds as one **segment**
with a single heap event at the segment's end, and replays the
intermediate round boundaries lazily:

* segment boundaries accumulate ``busy_until += round_time`` exactly as
  the reference loop does, so every boundary, completion time and
  utilisation figure is **bit-identical**;
* before any event is handled, machines with unflushed boundaries at or
  before ``now`` replay them in global ``(time, push-order)`` order, so
  the interference trackers ingest the very same observation sequence;
* a placement onto a mid-segment machine truncates its segment to the
  current round (the new job joins at the next boundary, as always), and
  while the queue is non-empty every segment is clamped to one round —
  the policy then sees the exact per-round ``FleetState`` sequence the
  reference loop would have shown it.

Event count drops from O(total steps) to O(mix changes); the reference
implementation is kept as ``FleetSimulator(compressed=False)`` and the
equivalence is enforced by tests and by the fleet benchmark.

Fault injection
---------------
Both loops consult a :class:`~repro.fleet.faults.FaultInjector`
(``run(jobs, faults=...)``): crashes, graceful drains, mid-trace joins,
straggler windows and job preemptions are heap events of their own kind,
ordered *after* round boundaries and *before* arrivals at equal
timestamps.  In the compressed path every fault instant is a mandatory
segment boundary — the handler lazily replays all due boundaries through
the global heap first, applies the fault (aborting any in-flight round),
and truncates surviving segments, so interference histories and every
float stay bit-identical to the reference loop even mid-fault-storm.  An
empty plan pushes no events and costs nothing.

Open-loop arrivals & admission control
--------------------------------------
``run`` accepts either a pre-built job sequence or a lazy
:class:`~repro.fleet.arrivals.ArrivalProcess`.  Both are consumed as a
*stream*: exactly one future arrival lives in the heap at a time, and
popping it pulls the next from the generator — a million-job open-loop
run never materialises its trace, and streaming a process is
byte-identical to replaying ``process.materialize()`` (arrival pushes
interleave with other seq allocations, but heap order is decided by
``(time, kind)`` before ``seq``, and relative seq order among equal-time
arrivals is preserved).  An
:class:`~repro.fleet.arrivals.AdmissionController` turns unbounded
queueing into explicit shedding: arrivals that find the queue at its
``queue_limit`` are rejected (or evict the oldest queued job), and
admitted jobs still queued past their ``deadline`` expire via
``_EXPIRE`` timer events.  Every shed becomes a
:class:`JobRejection` on the result, so
``completions + failures + rejections == offered`` always holds, and
:class:`FleetResult` reports exact-method p50/p95/p99 wait/turnaround
percentiles plus windowed queue-depth/throughput/goodput series — all
inside the determinism digest.  On the compressed path every admission
decision and shed instant is a mandatory segment boundary (the PR 6
fault playbook): the handler replays due boundaries first, and a
non-empty queue keeps segments clamped to one round, so both loops see
identical queue states at identical instants.

Everything is deterministic for a fixed (arrival process, policy,
machine set, fault plan, admission controller): events are heap-ordered
with explicit tie-breakers, estimates are pure functions, and
wall-clock only appears in the separately reported scheduler-overhead
figure.
"""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import dataclass
from itertools import islice
from typing import Iterable, Iterator, Sequence

from repro.core.config import RuntimeConfig
from repro.core.interference import InterferenceSnapshot, InterferenceTracker
from repro.fleet import faults as faultlib
from repro.fleet.arrivals import (
    AdmissionController,
    ArrivalProcess,
    resolve_admission,
    validated_stream,
)
from repro.fleet.estimates import StepTimeEstimator, scale_step_time
from repro.fleet.faults import FaultInjector, FaultInstant, FaultPlan, resolve_fault_plan
from repro.fleet.job import Job, validate_trace
from repro.fleet.policies import PlacementPolicy, make_policy
from repro.fleet.state import (
    DEFAULT_INTERFERENCE_THRESHOLD,
    FleetState,
    MachineState,
    Placement,
)
from repro.hardware.zoo import get_machine
from repro.sweep.executor import BACKENDS, SweepExecutor

#: Default number of jobs allowed to share one machine (the paper's
#: co-run studies pair two workloads; capacity 2 is the sweet spot where
#: Strategy 3/4 still have idle resources to fill).
DEFAULT_MAX_CORUN = 2


class FleetStalled(RuntimeError):
    """The simulation can make no further progress with jobs still queued.

    Raised when the event heap drains while the policy keeps declining
    every queued job and at least one machine could still accept work —
    a policy livelock, as opposed to a dead fleet (which terminates
    normally with the stranded jobs marked failed).  ``jobs`` names the
    stuck jobs.
    """

    def __init__(self, message: str, jobs: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.jobs = tuple(jobs)


@dataclass(frozen=True, slots=True)
class JobCompletion:
    """Lifecycle record of one finished job."""

    job: str
    kind: str
    machine_id: str
    arrival_time: float
    start_time: float
    finish_time: float
    num_steps: int
    #: Execution attempts this job needed (1 unless crash-requeued).
    attempts: int = 1

    @property
    def wait_time(self) -> float:
        return self.start_time - self.arrival_time

    @property
    def turnaround_time(self) -> float:
        return self.finish_time - self.arrival_time


@dataclass(frozen=True, slots=True)
class JobFailure:
    """Lifecycle record of a job that exhausted its retry budget.

    A job fails when a machine crash strikes its ``max_retries``-th
    attempt, or when it is abandoned because no machine can ever accept
    it again (dead fleet) — in both cases ``attempts`` equals the plan's
    ``max_retries``.
    """

    job: str
    kind: str
    arrival_time: float
    attempts: int
    failed_time: float


@dataclass(frozen=True, slots=True)
class JobRejection:
    """Lifecycle record of a job shed by admission control.

    ``reason`` names the shed policy that fired: ``"reject-at-arrival"``
    (the queue was full when the job arrived), ``"drop-oldest"`` (a
    newer arrival evicted this queued job) or ``"deadline-expire"`` (the
    job waited past its deadline).  A rejected job consumed no machine
    time; every offered job ends as exactly one completion, failure or
    rejection.
    """

    job: str
    kind: str
    arrival_time: float
    rejected_time: float
    reason: str

    @property
    def wait_time(self) -> float:
        """How long the job sat in the queue before being shed (0.0 for
        arrivals rejected on the spot)."""
        return self.rejected_time - self.arrival_time


def exact_percentiles(
    values: Iterable[float], percentiles: Sequence[int] = (50, 95, 99)
) -> dict[str, float]:
    """Nearest-rank percentiles — the exact method, no interpolation.

    ``p`` maps to the value at 1-based rank ``ceil(p/100 * n)`` of the
    sorted sample: an actual observed value, deterministic, and stable
    under the streaming/materialised and compressed/reference
    equivalences the fleet gates on.  An empty sample yields 0.0.
    """
    ordered = sorted(values)
    n = len(ordered)
    out: dict[str, float] = {}
    for p in percentiles:
        if n == 0:
            out[f"p{p}"] = 0.0
        else:
            rank = math.ceil(p * n / 100)
            out[f"p{p}"] = ordered[min(max(rank, 1), n) - 1]
    return out


class _QueueDepthLog:
    """Windowed maximum of the central queue depth, built in-loop.

    Both loops call :meth:`record` after every queue mutation — the
    identical ``(time, depth)`` sequence, so the series lands in the
    determinism digest.  Depth is piecewise constant between records;
    window ``i`` covers ``[i*window, (i+1)*window)`` simulated seconds
    and carries the running depth in from the previous window, so a
    quiet window under a standing backlog still reports that backlog.
    O(windows) memory regardless of trace length.
    """

    __slots__ = ("window", "_depth", "_index", "_max", "_series", "_touched")

    def __init__(self, window: float) -> None:
        self.window = window
        self._depth = 0
        self._index = 0
        self._max = 0
        self._series: list[int] = []
        self._touched = False

    def record(self, time: float, depth: int) -> None:
        self._touched = True
        index = int(time // self.window)
        while self._index < index:
            self._series.append(self._max)
            self._index += 1
            self._max = self._depth
        self._depth = depth
        if depth > self._max:
            self._max = depth

    def finish(self) -> tuple[int, ...]:
        """Close the in-progress window and return the series."""
        if not self._touched:
            return ()
        self._series.append(self._max)
        return tuple(self._series)


def _windowed_completions(
    completions: Sequence[JobCompletion], window: float
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Per-window completed jobs (throughput) and completed training
    steps (goodput), derived from the completion records post-hoc —
    trivially identical across both loops."""
    if not completions:
        return (), ()
    spans = int(max(c.finish_time for c in completions) // window) + 1
    throughput = [0] * spans
    goodput = [0] * spans
    for c in completions:
        index = int(c.finish_time // window)
        throughput[index] += 1
        goodput[index] += c.num_steps
    return tuple(throughput), tuple(goodput)


@dataclass(frozen=True)
class MachineReport:
    """Per-machine aggregate of one fleet simulation."""

    machine_id: str
    machine_name: str
    jobs_served: int
    rounds: int
    corun_rounds: int
    busy_time: float
    utilization: float
    #: Pairings *this* machine observed crossing the threshold (the
    #: fleet-wide blacklist is the union of these, shared via
    #: snapshot()/merge()).
    local_blacklist: tuple[tuple[str, str], ...] = ()
    # -- fault accounting (all zero on a fault-free run) -------------------------
    #: Jobs this machine's crash sent back to the queue.
    retries: int = 0
    #: JobPreempt events applied on this machine.
    preemptions: int = 0
    #: Training steps destroyed by aborted in-flight rounds.
    lost_steps: int = 0
    #: Simulated seconds between the machine leaving the fleet (crash or
    #: drain completion) and the end of the trace (0.0 while alive).
    downtime: float = 0.0

    @classmethod
    def from_dict(cls, payload: dict) -> "MachineReport":
        """Exact inverse of the per-machine dict in
        :meth:`FleetResult.to_dict`."""
        return cls(
            machine_id=payload["machine"],
            machine_name=payload["name"],
            jobs_served=payload["jobs_served"],
            rounds=payload["rounds"],
            corun_rounds=payload["corun_rounds"],
            busy_time=payload["busy_time"],
            utilization=payload["utilization"],
            local_blacklist=tuple(
                tuple(pair) for pair in payload.get("local_blacklist", ())
            ),
            retries=payload.get("retries", 0),
            preemptions=payload.get("preemptions", 0),
            lost_steps=payload.get("lost_steps", 0),
            downtime=payload.get("downtime", 0.0),
        )


def _pack_rows(rows: list) -> list[tuple]:
    """Snapshot form of a homogeneous list of dataclass records.

    Plain field tuples pickle several times faster than dataclass
    instances, and the placement/completion logs are the two O(jobs)
    components of a checkpoint — packing them keeps the snapshot cost
    inside the resilience suite's checkpoint-overhead gate.
    """
    return [
        tuple(getattr(row, name) for name in type(row).__dataclass_fields__)
        for row in rows
    ]


def _unpack_rows(cls, rows: list) -> list:
    """Rebuild :func:`_pack_rows` tuples as records (field order = ctor order)."""
    return [cls(*row) for row in rows]


class _PackCache:
    """Incremental :func:`_pack_rows` over an append-only record list.

    The placement/completion logs only ever grow, so each snapshot packs
    just the rows appended since the previous one — total packing work
    per run is O(jobs) regardless of how many snapshots are taken.  The
    returned list is shared between snapshots; the checkpointer pickles
    it synchronously inside ``save``, before the next append.
    """

    __slots__ = ("count", "packed")

    def __init__(self, seed: "list | None" = None) -> None:
        self.packed: list = list(seed) if seed else []
        self.count = len(self.packed)

    def pack(self, rows: list) -> list:
        if self.count < len(rows):
            self.packed.extend(_pack_rows(rows[self.count :]))
            self.count = len(rows)
        return self.packed


#: ``to_dict`` keys present only with ``include_overhead=True``: wall
#: clock and estimator-traffic diagnostics that legitimately vary
#: between byte-identical simulations, and therefore stay out of every
#: determinism digest.
OVERHEAD_KEYS: tuple[str, ...] = (
    "scheduler_overhead_seconds",
    "estimates_requested",
    "estimates_computed",
    "events_processed",
)


@dataclass
class FleetResult:
    """Outcome of simulating one job trace under one placement policy."""

    policy_name: str
    machine_names: tuple[str, ...]
    num_jobs: int
    makespan: float
    completions: tuple[JobCompletion, ...]
    placements: tuple[Placement, ...]
    machine_reports: tuple[MachineReport, ...]
    blacklisted_pairs: tuple[tuple[str, str], ...]
    #: Jobs that exhausted their retry budget (empty on fault-free runs;
    #: every job of a trace is exactly one completion or one failure).
    failures: tuple[JobFailure, ...] = ()
    #: Jobs shed by admission control (empty without a controller);
    #: ``completions + failures + rejections`` partition the offered jobs.
    rejections: tuple[JobRejection, ...] = ()
    #: Fleet-wide fault accounting (sums of the per-machine figures).
    retries: int = 0
    preemptions: int = 0
    lost_steps: int = 0
    #: Width, in simulated seconds, of the windowed time series below.
    series_window: float = 25.0
    #: Per-window maximum central-queue depth (in-loop, carries standing
    #: backlog across quiet windows).
    queue_depth_series: tuple[int, ...] = ()
    #: Per-window completed jobs / completed training steps.
    throughput_series: tuple[int, ...] = ()
    goodput_series: tuple[int, ...] = ()
    #: Wall-clock seconds spent inside policy decisions (NOT part of the
    #: deterministic outcome; excluded from determinism digests).
    scheduler_overhead_seconds: float = 0.0
    #: Estimator traffic: how many step-time estimates the run requested
    #: and how many were actually simulated (the rest were memo hits).
    estimates_requested: int = 0
    estimates_computed: int = 0
    #: Heap events the simulator processed (the compressed path's whole
    #: point is making this O(mix changes) instead of O(total steps)).
    #: Diagnostic only — excluded from determinism digests.
    events_processed: int = 0

    @property
    def mean_wait_time(self) -> float:
        if not self.completions:
            return 0.0
        return sum(c.wait_time for c in self.completions) / len(self.completions)

    @property
    def mean_turnaround_time(self) -> float:
        if not self.completions:
            return 0.0
        return sum(c.turnaround_time for c in self.completions) / len(self.completions)

    @property
    def wait_percentiles(self) -> dict[str, float]:
        """Exact p50/p95/p99 of completed jobs' queue wait times."""
        return exact_percentiles(c.wait_time for c in self.completions)

    @property
    def turnaround_percentiles(self) -> dict[str, float]:
        """Exact p50/p95/p99 of completed jobs' arrival-to-finish times."""
        return exact_percentiles(c.turnaround_time for c in self.completions)

    @property
    def peak_queue_depth(self) -> int:
        return max(self.queue_depth_series, default=0)

    @property
    def shed_rate(self) -> float:
        """Fraction of offered jobs shed by admission control."""
        if not self.num_jobs:
            return 0.0
        return len(self.rejections) / self.num_jobs

    def to_dict(self, *, include_overhead: bool = True) -> dict:
        """JSON-ready summary; ``include_overhead=False`` restricts the
        dict to the deterministic fields (the determinism-gate digest)."""
        out = {
            "policy": self.policy_name,
            "machines": list(self.machine_names),
            "num_jobs": self.num_jobs,
            "makespan": self.makespan,
            "mean_wait_time": self.mean_wait_time,
            "mean_turnaround_time": self.mean_turnaround_time,
            "completions": [
                {
                    "job": c.job,
                    "kind": c.kind,
                    "machine": c.machine_id,
                    "arrival": c.arrival_time,
                    "start": c.start_time,
                    "finish": c.finish_time,
                    "steps": c.num_steps,
                    "attempts": c.attempts,
                }
                for c in self.completions
            ],
            "failures": [
                {
                    "job": f.job,
                    "kind": f.kind,
                    "arrival": f.arrival_time,
                    "attempts": f.attempts,
                    "failed": f.failed_time,
                }
                for f in self.failures
            ],
            "rejections": [
                {
                    "job": r.job,
                    "kind": r.kind,
                    "arrival": r.arrival_time,
                    "rejected": r.rejected_time,
                    "reason": r.reason,
                }
                for r in self.rejections
            ],
            "shed_rate": self.shed_rate,
            "wait_percentiles": self.wait_percentiles,
            "turnaround_percentiles": self.turnaround_percentiles,
            "series_window": self.series_window,
            "queue_depth_series": list(self.queue_depth_series),
            "throughput_series": list(self.throughput_series),
            "goodput_series": list(self.goodput_series),
            "peak_queue_depth": self.peak_queue_depth,
            "retries": self.retries,
            "preemptions": self.preemptions,
            "lost_steps": self.lost_steps,
            "machine_reports": [
                {
                    "machine": m.machine_id,
                    "name": m.machine_name,
                    "jobs_served": m.jobs_served,
                    "rounds": m.rounds,
                    "corun_rounds": m.corun_rounds,
                    "busy_time": m.busy_time,
                    "utilization": m.utilization,
                    "local_blacklist": [list(pair) for pair in m.local_blacklist],
                    "retries": m.retries,
                    "preemptions": m.preemptions,
                    "lost_steps": m.lost_steps,
                    "downtime": m.downtime,
                }
                for m in self.machine_reports
            ],
            "blacklisted_pairs": [list(pair) for pair in self.blacklisted_pairs],
            "placements": [
                {
                    "job": p.job,
                    "kind": p.kind,
                    "machine": p.machine_id,
                    "time": p.time,
                }
                for p in self.placements
            ],
        }
        if include_overhead:
            out["scheduler_overhead_seconds"] = self.scheduler_overhead_seconds
            out["estimates_requested"] = self.estimates_requested
            out["estimates_computed"] = self.estimates_computed
            out["events_processed"] = self.events_processed
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetResult":
        """Exact inverse of :meth:`to_dict`: rebuild the result from its
        JSON form.  Derived keys (``mean_wait_time``, percentiles,
        ``peak_queue_depth``, ``shed_rate``) are recomputed from the
        event lists rather than trusted; overhead keys stripped by
        ``include_overhead=False`` come back as zeros.
        """
        return cls(
            policy_name=payload["policy"],
            machine_names=tuple(payload["machines"]),
            num_jobs=payload["num_jobs"],
            makespan=payload["makespan"],
            completions=tuple(
                JobCompletion(
                    job=c["job"],
                    kind=c["kind"],
                    machine_id=c["machine"],
                    arrival_time=c["arrival"],
                    start_time=c["start"],
                    finish_time=c["finish"],
                    num_steps=c["steps"],
                    attempts=c.get("attempts", 1),
                )
                for c in payload["completions"]
            ),
            placements=tuple(
                Placement(
                    job=p["job"],
                    kind=p["kind"],
                    machine_id=p["machine"],
                    time=p["time"],
                )
                for p in payload.get("placements", ())
            ),
            machine_reports=tuple(
                MachineReport.from_dict(m) for m in payload["machine_reports"]
            ),
            blacklisted_pairs=tuple(
                tuple(pair) for pair in payload["blacklisted_pairs"]
            ),
            failures=tuple(
                JobFailure(
                    job=f["job"],
                    kind=f["kind"],
                    arrival_time=f["arrival"],
                    attempts=f["attempts"],
                    failed_time=f["failed"],
                )
                for f in payload.get("failures", ())
            ),
            rejections=tuple(
                JobRejection(
                    job=r["job"],
                    kind=r["kind"],
                    arrival_time=r["arrival"],
                    rejected_time=r["rejected"],
                    reason=r["reason"],
                )
                for r in payload.get("rejections", ())
            ),
            retries=payload.get("retries", 0),
            preemptions=payload.get("preemptions", 0),
            lost_steps=payload.get("lost_steps", 0),
            series_window=payload.get("series_window", 25.0),
            queue_depth_series=tuple(payload.get("queue_depth_series", ())),
            throughput_series=tuple(payload.get("throughput_series", ())),
            goodput_series=tuple(payload.get("goodput_series", ())),
            scheduler_overhead_seconds=payload.get("scheduler_overhead_seconds", 0.0),
            estimates_requested=payload.get("estimates_requested", 0),
            estimates_computed=payload.get("estimates_computed", 0),
            events_processed=payload.get("events_processed", 0),
        )


#: Event kinds, ordered: at equal timestamps round boundaries retire
#: jobs and free slots *before* faults apply, faults apply *before*
#: deadline timers fire (a round completing at a crash instant
#: completes; a requeue at the deadline instant exempts the job), and
#: timers fire *before* arrivals are admitted (an expiring job frees
#: its queue slot for a job arriving at the same instant).
_ROUND_END = 0
_FAULT = 1
_EXPIRE = 2
_ARRIVAL = 3


class FleetSimulator:
    """Simulate a stream of jobs over a set of zoo machines.

    Parameters
    ----------
    machines:
        Zoo names of the fleet's machines (duplicates welcome — five
        ``"desktop-8c"`` entries model a homogeneous rack).  Machine ids
        are ``m0``, ``m1``, ... in the given order.
    policy:
        A policy name from :data:`repro.fleet.policies.POLICIES` or a
        ready :class:`~repro.fleet.policies.PlacementPolicy` instance.
    executor:
        Optional :class:`~repro.sweep.executor.SweepExecutor` the
        step-time estimator fans out over (and whose cache it reuses).
    config:
        Runtime configuration for the per-machine co-run simulations.
    max_corun:
        Job slots per machine.
    interference_threshold:
        Pairing-slowdown blacklist threshold of the fleet-wide tracker.
    compressed:
        ``True`` (default) runs the round-compression fast path;
        ``False`` keeps the seed one-event-per-round reference loop.
        Both produce identical deterministic outcomes
        (``FleetResult.to_dict(include_overhead=False)``).
    faults:
        Default fault plan for every :meth:`run` — a
        :class:`~repro.fleet.faults.FaultPlan`, injector, spec dict,
        registered fault-spec name or JSON string (see
        :func:`~repro.fleet.faults.resolve_fault_plan`).  ``run``'s own
        ``faults=`` argument overrides it per run.
    admission:
        Default :class:`~repro.fleet.arrivals.AdmissionController` (or
        spec dict) applied to every :meth:`run`; ``None`` admits
        everything.  ``run``'s own ``admission=`` overrides it per run.
    series_window:
        Width, in simulated seconds, of the windowed queue-depth /
        throughput / goodput series on :class:`FleetResult`.
    shards:
        ``None`` (default) keeps the single-event-loop paths above.  An
        integer ``>= 1`` runs the sharded engine
        (:mod:`repro.fleet.sharding`): machines are partitioned into
        that many groups which advance independently between fleet-wide
        synchronisation points, byte-identical to the compressed path.
        Requires ``compressed=True``.
    shard_backend:
        Sweep-executor backend (``"serial"``, ``"thread"``,
        ``"process"``) shard groups fan out on during wide
        synchronisation windows; ``"serial"`` advances them inline.
    """

    def __init__(
        self,
        machines: Sequence[str],
        *,
        policy: str | PlacementPolicy = "interference-aware",
        executor: SweepExecutor | None = None,
        estimator: StepTimeEstimator | None = None,
        config: RuntimeConfig | None = None,
        max_corun: int = DEFAULT_MAX_CORUN,
        interference_threshold: float = DEFAULT_INTERFERENCE_THRESHOLD,
        compressed: bool = True,
        faults: "FaultPlan | FaultInjector | dict | str | None" = None,
        admission: "AdmissionController | dict | None" = None,
        series_window: float = 25.0,
        shards: int | None = None,
        shard_backend: str = "serial",
        shard_retry: "RetryPolicy | None" = None,
        shard_chaos: "object | None" = None,
    ) -> None:
        if not machines:
            raise ValueError("a fleet needs at least one machine")
        if max_corun < 1:
            raise ValueError("max_corun must be at least 1")
        if series_window <= 0:
            raise ValueError("series_window must be positive")
        if shards is not None:
            shards = int(shards)
            if shards < 1:
                raise ValueError("shards must be at least 1")
            if not compressed:
                raise ValueError(
                    "the sharded engine runs on the compressed path: "
                    "shards= requires compressed=True"
                )
        if shard_backend not in BACKENDS:
            raise ValueError(
                f"unknown shard backend {shard_backend!r}; pick one of {BACKENDS}"
            )
        self.shards = shards
        self.shard_backend = shard_backend
        #: Retry policy for shard fan-out workers (None picks
        #: :data:`repro.fleet.sharding.DEFAULT_SHARD_RETRY`: shard tasks
        #: are pure, so crashed/hung workers are always recoverable by a
        #: local degrade) and an optional chaos plan for them.
        self.shard_retry = shard_retry
        self.shard_chaos = shard_chaos
        #: Executor counters of the last sharded run's fan-out
        #: (:class:`~repro.sweep.executor.SweepStats`), ``None`` before.
        self.shard_stats = None
        for name in machines:
            get_machine(name)  # fail fast on dangling zoo names
        self.machine_names = tuple(machines)
        self.max_corun = max_corun
        self.compressed = compressed
        self.faults = resolve_fault_plan(faults)
        self.admission = resolve_admission(admission)
        self.series_window = float(series_window)
        self.config = config or RuntimeConfig()
        self.estimator = estimator or StepTimeEstimator(executor=executor, config=self.config)
        self.tracker = InterferenceTracker(threshold=interference_threshold)
        if isinstance(policy, str):
            self.policy = make_policy(
                policy, estimator=self.estimator, tracker=self.tracker
            )
            #: Registered policy name, kept so a checkpoint resume can
            #: rebuild the policy against the restored tracker (policy
            #: instances passed directly cannot be resumed).
            self._policy_spec: str | None = policy
        else:
            self.policy = policy
            self._policy_spec = None
        #: Tracker state at first run entry (pre-seeded knowledge included);
        #: every later run() resets to it so repeated runs are identical.
        self._tracker_baseline: "InterferenceSnapshot | None" = None
        #: Per-run checkpoint plumbing, set by run() for the duration of
        #: the event loop (the loops read them instead of new parameters
        #: so the three runner signatures stay identical).
        self._ckpt = None
        self._resume_payload: dict | None = None

    # -- shared run scaffolding ----------------------------------------------------

    def run(
        self,
        jobs: "Sequence[Job] | ArrivalProcess",
        *,
        prewarm: bool | str = True,
        faults: "FaultPlan | FaultInjector | dict | str | None" = None,
        admission: "AdmissionController | dict | None" = None,
        checkpoint: "object | None" = None,
        run_id: str | None = None,
        manifest: dict | None = None,
        resume_from: dict | None = None,
    ) -> FleetResult:
        """Simulate ``jobs`` arriving and running to completion.

        ``jobs`` is a pre-built sequence or a lazy
        :class:`~repro.fleet.arrivals.ArrivalProcess`; both are consumed
        as a stream (a process is never materialised — see the module
        docstring), and streaming a process is byte-identical to
        replaying ``process.materialize()``.

        ``prewarm`` batches estimates through the sweep engine before the
        event loop starts: ``True`` / ``"solo"`` fans out every distinct
        solo signature (the bulk of policy traffic), ``"mixes"``
        additionally fans out every distinct co-run ``canonical_mix``
        signature up to ``max_corun`` members, ``False`` skips it.  For a
        process, one representative job per workload kind
        (``prewarm_jobs()``) stands in for the trace.  An empty trace
        returns a well-formed empty :class:`FleetResult`.

        ``faults`` injects a :class:`~repro.fleet.faults.FaultPlan` into
        this run and ``admission`` applies an
        :class:`~repro.fleet.arrivals.AdmissionController` (each
        overriding the constructor's default); every offered job then
        ends as exactly one completion, failure or rejection.

        ``checkpoint`` enables periodic full-state snapshots (anything
        :func:`repro.resilience.checkpoint.resolve_checkpoint` accepts:
        ``True``, an event interval, a config dict/``CheckpointConfig``,
        or a ready ``Checkpointer``); ``run_id`` names the snapshot
        directory (required unless a ``Checkpointer`` is passed) and
        ``manifest`` is an opaque JSON-ready run description stored
        beside the snapshots so tooling can rebuild the run.  An
        interrupted checkpointed run raises
        :class:`~repro.resilience.checkpoint.RunInterrupted` *after*
        flushing a final snapshot; ``resume_from`` (the payload from
        ``Checkpointer.open``) restarts the loop from that snapshot and
        produces a digest byte-identical to the uninterrupted run.
        ``jobs``/``faults``/``admission`` must match the original run.
        """
        if isinstance(jobs, ArrivalProcess):
            expected = jobs.num_jobs
            stream: Iterator[Job] = validated_stream(jobs.jobs())
            prewarm_jobs: Sequence[Job] = jobs.prewarm_jobs()
        else:
            validate_trace(jobs)
            ordered = sorted(jobs, key=lambda j: (j.arrival_time, j.name))
            expected = len(ordered)
            stream = iter(ordered)
            prewarm_jobs = ordered
        plan = resolve_fault_plan(faults) if faults is not None else self.faults
        injector = FaultInjector(plan)
        injector.validate_for(len(self.machine_names))
        controller = (
            resolve_admission(admission) if admission is not None else self.admission
        )
        from repro.resilience.checkpoint import (
            CheckpointError,
            Checkpointer,
            resolve_checkpoint,
        )

        if resume_from is not None:
            state = resume_from.get("state")
            if not isinstance(state, dict):
                raise CheckpointError("resume payload carries no state dict")
            expected_mode = (
                "sharded"
                if self.shards is not None
                else ("compressed" if self.compressed else "reference")
            )
            if state.get("mode") != expected_mode:
                raise CheckpointError(
                    f"checkpoint was written by the {state.get('mode')!r} loop "
                    f"but this simulator runs the {expected_mode!r} path"
                )
            if self._policy_spec is None:
                raise CheckpointError(
                    "resume requires a policy constructed from a registered "
                    "name (policy instances cannot be rebuilt against the "
                    "restored tracker)"
                )
            # The snapshot's tracker object IS the run's fleet tracker
            # (the machines' seg_records share its history deques);
            # adopt it and rebuild the policy against it.
            self.tracker = state["tracker"]
            self.policy = make_policy(
                self._policy_spec, estimator=self.estimator, tracker=self.tracker
            )
            self._tracker_baseline = None
            # Re-aim the fresh deterministic stream at the snapshot's
            # arrival cursor: every job at or before the snapshot is
            # either done or inside the captured loop state.
            stream = islice(stream, state["arrivals_pulled"], None)
        else:
            # Same inputs -> same outcome, even on a reused simulator: the
            # fleet-wide tracker restarts from its first-run baseline (which
            # keeps any knowledge the caller pre-seeded), and estimator stats
            # are reported as per-run deltas.
            if self._tracker_baseline is None:
                self._tracker_baseline = self.tracker.snapshot()
            else:
                self.tracker.clear()
                self.tracker.merge(self._tracker_baseline)
        if checkpoint is not None and not isinstance(checkpoint, Checkpointer):
            if checkpoint and run_id is None:
                raise ValueError(
                    "checkpoint= requires run_id= (or pass a ready Checkpointer)"
                )
            checkpoint = resolve_checkpoint(
                checkpoint, run_id=run_id or "", manifest=manifest
            )
        # Policies may memoise pure per-run computations; reset them so a
        # rerun reports the identical estimator traffic.
        clear_memo = getattr(self.policy, "clear_memo", None)
        if clear_memo is not None:
            clear_memo()
        requests_before = self.estimator.stats.requests
        computed_before = self.estimator.stats.computed
        if prewarm and expected and prewarm_jobs:
            # Solo estimates dominate policy traffic; batch them through
            # the sweep engine up front (parallel under a process backend).
            # prewarm="mixes" also covers every possible co-run signature.
            self.estimator.prewarm(
                self.machine_names,
                prewarm_jobs,
                max_corun=self.max_corun if prewarm == "mixes" else 1,
            )

        machines = [
            MachineState(
                machine_id=f"m{index}",
                machine_name=name,
                capacity=self.max_corun,
                tracker=InterferenceTracker(threshold=self.tracker.threshold),
            )
            for index, name in enumerate(self.machine_names)
        ]
        if not expected:
            return self._assemble_result(
                machines, [], [], [], [], (), 0, 0.0, 0,
                requests_before, computed_before,
            )
        if self.shards is not None:
            from repro.fleet.sharding import run_sharded

            runner = lambda *args: run_sharded(self, *args)  # noqa: E731
        elif self.compressed:
            runner = self._run_compressed
        else:
            runner = self._run_reference
        self._ckpt = checkpoint
        self._resume_payload = resume_from
        try:
            (
                completions,
                placements,
                failures,
                rejections,
                depth_series,
                offered,
                overhead,
                events,
            ) = runner(stream, machines, injector, controller)
        finally:
            self._ckpt = None
            self._resume_payload = None
        result = self._assemble_result(
            machines,
            completions,
            placements,
            failures,
            rejections,
            depth_series,
            offered,
            overhead,
            events,
            requests_before,
            computed_before,
        )
        if checkpoint is not None:
            # The run completed and its result assembled cleanly: the
            # snapshots have served their purpose.
            checkpoint.complete()
        return result

    def _assemble_result(
        self,
        machines: list[MachineState],
        completions: list[JobCompletion],
        placements: list[Placement],
        failures: list[JobFailure],
        rejections: list[JobRejection],
        depth_series: tuple[int, ...],
        offered: int,
        overhead: float,
        events: int,
        requests_before: int,
        computed_before: int,
    ) -> FleetResult:
        accounted = len(completions) + len(failures) + len(rejections)
        if accounted != offered:
            raise RuntimeError(
                "job accounting broken: "
                f"{len(completions)} completions + {len(failures)} failures + "
                f"{len(rejections)} rejections != {offered} offered"
            )
        makespan = max((c.finish_time for c in completions), default=0.0)
        throughput, goodput = _windowed_completions(completions, self.series_window)
        served: dict[str, int] = {m.machine_id: 0 for m in machines}
        for placement in placements:
            served[placement.machine_id] += 1
        reports = tuple(
            MachineReport(
                machine_id=m.machine_id,
                machine_name=m.machine_name,
                jobs_served=served[m.machine_id],
                rounds=m.rounds,
                corun_rounds=m.corun_rounds,
                busy_time=m.busy_time,
                utilization=m.busy_time / makespan if makespan > 0 else 0.0,
                local_blacklist=m.tracker.blacklisted_pairs(),
                retries=m.retries,
                preemptions=m.preemptions,
                lost_steps=m.lost_steps,
                downtime=(
                    max(0.0, makespan - m.dead_since)
                    if m.dead_since is not None
                    else 0.0
                ),
            )
            for m in machines
        )
        return FleetResult(
            policy_name=self.policy.name,
            machine_names=self.machine_names,
            num_jobs=offered,
            makespan=makespan,
            completions=tuple(sorted(completions, key=lambda c: (c.finish_time, c.job))),
            placements=tuple(placements),
            machine_reports=reports,
            blacklisted_pairs=self.tracker.blacklisted_pairs(),
            failures=tuple(sorted(failures, key=lambda f: (f.failed_time, f.job))),
            rejections=tuple(
                sorted(rejections, key=lambda r: (r.rejected_time, r.job))
            ),
            series_window=self.series_window,
            queue_depth_series=depth_series,
            throughput_series=throughput,
            goodput_series=goodput,
            retries=sum(m.retries for m in machines),
            preemptions=sum(m.preemptions for m in machines),
            lost_steps=sum(m.lost_steps for m in machines),
            scheduler_overhead_seconds=overhead,
            estimates_requested=self.estimator.stats.requests - requests_before,
            estimates_computed=self.estimator.stats.computed - computed_before,
            events_processed=events,
        )

    # -- the reference event loop (the seed path, one event per round) -------------

    def _run_reference(
        self,
        stream: Iterator[Job],
        machines: list[MachineState],
        injector: FaultInjector,
        controller: AdmissionController,
    ) -> tuple:
        by_id = {m.machine_id: m for m in machines}
        queue: list[Job] = []
        placements: list[Placement] = []
        completions: list[JobCompletion] = []
        failures: list[JobFailure] = []
        rejections: list[JobRejection] = []
        depth_log = _QueueDepthLog(self.series_window)
        queue_limit = controller.queue_limit
        drop_oldest = controller.drop_oldest
        deadline = controller.deadline
        offered = 0
        start_times: dict[str, float] = {}
        #: Execution attempts per job.  Entries exist only for jobs a
        #: crash has requeued (or failed): completions read
        #: ``attempts.get(name, 1)``, and a *missing* entry marks the job
        #: still deadline-eligible (a retried job is exempt).
        attempts: dict[str, int] = {}
        #: Remaining steps of requeued jobs: a crash/preempt restores the
        #: job's progress to the last completed round boundary, and its
        #: next placement resumes from here instead of ``num_steps``.
        remaining_override: dict[str, int] = {}
        max_retries = injector.max_retries
        overhead = 0.0
        now = 0.0
        seq = 0
        events_processed = 0

        #: (time, kind, seq, payload) — kind orders round-ends before
        #: faults before deadline expiries before arrivals at equal
        #: timestamps, seq keeps FIFO among equals (fault instants replay
        #: in plan order).  Arrivals are pulled lazily: exactly one
        #: future arrival lives in the heap, and popping it pushes the
        #: next — heap order is decided by (time, kind) before seq, and
        #: equal-time arrivals keep their relative push order, so the
        #: outcome is byte-identical to pushing the whole trace up front.
        events: list[tuple[float, int, int, object]] = []
        arrivals_pulled = 0
        ckpt = self._ckpt

        def push_next_arrival() -> None:
            nonlocal seq, arrivals_pulled
            job = next(stream, None)
            if job is not None:
                arrivals_pulled += 1
                heapq.heappush(events, (job.arrival_time, _ARRIVAL, seq, job))
                seq += 1

        placements_pack = _PackCache()
        completions_pack = _PackCache()
        if self._resume_payload is None:
            push_next_arrival()
            for instant in injector.timeline():
                heapq.heappush(events, (instant.time, _FAULT, seq, instant))
                seq += 1
        else:
            # Restore the captured loop state wholesale.  The pending
            # fault instants, the in-flight arrival and every timer
            # already live in the captured heap, so the initial pushes
            # above must not run again.
            state = self._resume_payload["state"]
            now = state["now"]
            seq = state["seq"]
            offered = state["offered"]
            overhead = state["overhead"]
            events_processed = state["events_processed"]
            arrivals_pulled = state["arrivals_pulled"]
            events = state["events"]
            queue = state["queue"]
            placements = _unpack_rows(Placement, state["placements"])
            completions = _unpack_rows(JobCompletion, state["completions"])
            placements_pack = _PackCache(seed=state["placements"])
            completions_pack = _PackCache(seed=state["completions"])
            failures = state["failures"]
            rejections = state["rejections"]
            depth_log = state["depth_log"]
            start_times = state["start_times"]
            attempts = state["attempts"]
            remaining_override = state["remaining_override"]
            machines[:] = state["machines"]
            by_id.clear()
            by_id.update((m.machine_id, m) for m in machines)

        def capture() -> dict:
            return {
                "mode": "reference",
                "now": now,
                "seq": seq,
                "offered": offered,
                "overhead": overhead,
                "events_processed": events_processed,
                "arrivals_pulled": arrivals_pulled,
                "events": events,
                "queue": queue,
                "placements": placements_pack.pack(placements),
                "completions": completions_pack.pack(completions),
                "failures": failures,
                "rejections": rejections,
                "depth_log": depth_log,
                "start_times": start_times,
                "attempts": attempts,
                "remaining_override": remaining_override,
                "machines": machines,
                "tracker": self.tracker,
            }

        def reject(job: Job, reason: str) -> None:
            rejections.append(
                JobRejection(
                    job=job.name,
                    kind=job.kind,
                    arrival_time=job.arrival_time,
                    rejected_time=now,
                    reason=reason,
                )
            )

        def shed(job: Job, reason: str) -> None:
            # The job just left the central queue unserved; any progress
            # restored from an earlier preemption dies with it.
            remaining_override.pop(job.name, None)
            reject(job, reason)
            depth_log.record(now, len(queue))

        def fleet_state() -> FleetState:
            # Read the dirty-flag cache directly: a thousand-machine fleet
            # pays one method call per *touched* machine instead of one
            # per machine per placement.
            return FleetState(
                time=now,
                machines=tuple(m._view_cache or m.view() for m in machines),
                queue=tuple(queue),
                queue_limit=queue_limit,
            )

        def start_round(machine: MachineState) -> None:
            machine.residents.extend(machine.waiting)
            machine.waiting.clear()
            machine.touch()
            if not machine.residents:
                return
            for job in machine.residents:
                start_times.setdefault(job.name, now)
            base = self.estimator.step_time(machine.machine_name, machine.residents)
            machine.round_base = base
            round_time = scale_step_time(base, machine.straggle)
            machine.round_time = round_time
            machine.busy_until = now + round_time
            machine.round_active = True
            # Round-end events tie-break on the machine's stable numeric
            # index (machine ids are dense ``m<index>``), not a global
            # sequence counter: equal-instant round ends then replay in
            # an order reconstructible from per-machine state alone,
            # which the compressed ``sync_to`` and the sharded engine's
            # log merge both rely on.
            heapq.heappush(
                events,
                (machine.busy_until, _ROUND_END, int(machine.machine_id[1:]),
                 (machine.machine_id, machine.epoch)),
            )

        def finish_round(machine: MachineState) -> None:
            machine.round_active = False
            residents = list(machine.residents)
            # The round completed: only now does it count (an aborted
            # round contributes to lost_steps instead).
            machine.busy_time += machine.round_time
            machine.rounds += 1
            if len(residents) > 1:
                machine.corun_rounds += 1
            # Observe pairing slowdowns before anyone departs.  The
            # *unscaled* duration is compared against the solo estimates:
            # a straggling machine is uniformly slow, not a bad pairing.
            if len(residents) > 1:
                duration = machine.round_base
                delta = InterferenceTracker(threshold=self.tracker.threshold)
                solos = {
                    job.name: self.estimator.solo_time(machine.machine_name, job)
                    for job in residents
                }
                for i, job_a in enumerate(residents):
                    for job_b in residents[i + 1 :]:
                        baseline = max(solos[job_a.name], solos[job_b.name])
                        slowdown = duration / baseline - 1.0 if baseline > 0 else 0.0
                        delta.record(job_a.kind, job_b.kind, slowdown)
                snapshot = delta.snapshot()
                machine.tracker.merge(snapshot)
                self.tracker.merge(snapshot)
            # Advance every resident by one step; retire the finished.
            still_running: list[Job] = []
            for job in residents:
                remaining = machine.remaining_steps[job.name] - 1
                machine.remaining_steps[job.name] = remaining
                if remaining <= 0:
                    del machine.remaining_steps[job.name]
                    completions.append(
                        JobCompletion(
                            job=job.name,
                            kind=job.kind,
                            machine_id=machine.machine_id,
                            arrival_time=job.arrival_time,
                            start_time=start_times.pop(job.name),
                            finish_time=now,
                            num_steps=job.num_steps,
                            attempts=attempts.get(job.name, 1),
                        )
                    )
                else:
                    still_running.append(job)
            machine.residents = still_running
            machine.touch()
            if machine.draining and not machine.residents and not machine.waiting:
                machine.alive = False
                machine.draining = False
                machine.dead_since = now

        def dispatch() -> None:
            nonlocal overhead
            # FIFO over the queue; a job the policy declines stays queued
            # (later jobs may still fit — no head-of-line blocking).
            for job in list(queue):
                state = fleet_state()
                tick = _time.perf_counter()
                choice = self.policy.place(job, state)
                overhead += _time.perf_counter() - tick
                if choice is None:
                    continue
                machine = by_id[choice]
                if machine.free_slots <= 0:
                    raise RuntimeError(
                        f"policy {self.policy.name!r} placed {job.name!r} on full "
                        f"machine {choice!r}"
                    )
                queue.remove(job)
                depth_log.record(now, len(queue))
                machine.waiting.append(job)
                machine.remaining_steps[job.name] = remaining_override.pop(
                    job.name, job.num_steps
                )
                machine.touch()
                placements.append(
                    Placement(
                        job=job.name, kind=job.kind, machine_id=choice, time=now
                    )
                )
                if not machine.round_active:
                    start_round(machine)

        def fail_job(job: Job, time: float, count: int) -> None:
            attempts[job.name] = count
            remaining_override.pop(job.name, None)
            failures.append(
                JobFailure(
                    job=job.name,
                    kind=job.kind,
                    arrival_time=job.arrival_time,
                    attempts=count,
                    failed_time=time,
                )
            )

        def abort_round(machine: MachineState) -> None:
            """Discard an in-flight round: every resident loses the step
            in progress, and the pending round-end event goes stale."""
            if machine.round_active:
                machine.lost_steps += len(machine.residents)
                machine.round_active = False
                machine.epoch += 1
                machine.busy_until = now
                machine.touch()

        def check_drained(machine: MachineState) -> None:
            if machine.draining and not machine.residents and not machine.waiting:
                machine.alive = False
                machine.draining = False
                machine.dead_since = now
                machine.touch()

        def requeue(job: Job, machine: MachineState) -> None:
            """Crash path: send the job back with retry budget burned,
            or fail it if the budget is gone."""
            count = attempts.get(job.name, 1)
            if count >= max_retries:
                fail_job(job, now, count)
            else:
                attempts[job.name] = count + 1
                machine.retries += 1
                queue.append(job)
                depth_log.record(now, len(queue))

        def apply_fault(instant: FaultInstant) -> list[MachineState]:
            """Apply one fault instant; returns machines whose surviving
            residents must restart a round (after the dispatch pass)."""
            event = instant.event
            action = instant.action
            restart: list[MachineState] = []
            if action == faultlib.JOIN:
                new = MachineState(
                    machine_id=f"m{len(machines)}",
                    machine_name=event.machine_name,
                    capacity=self.max_corun,
                    tracker=InterferenceTracker(threshold=self.tracker.threshold),
                    joined_at=now,
                )
                machines.append(new)
                by_id[new.machine_id] = new
                return restart
            if action == faultlib.PREEMPT:
                for machine in machines:
                    if not machine.alive:
                        continue
                    resident = next(
                        (j for j in machine.residents if j.name == event.job), None
                    )
                    if resident is not None:
                        abort_round(machine)
                        machine.residents.remove(resident)
                        remaining_override[resident.name] = machine.remaining_steps.pop(
                            resident.name
                        )
                        machine.preemptions += 1
                        machine.touch()
                        queue.append(resident)
                        depth_log.record(now, len(queue))
                        check_drained(machine)
                        if machine.alive:
                            restart.append(machine)
                        return restart
                    waiter = next(
                        (j for j in machine.waiting if j.name == event.job), None
                    )
                    if waiter is not None:
                        machine.waiting.remove(waiter)
                        remaining_override[waiter.name] = machine.remaining_steps.pop(
                            waiter.name
                        )
                        machine.preemptions += 1
                        machine.touch()
                        queue.append(waiter)
                        depth_log.record(now, len(queue))
                        check_drained(machine)
                        return restart
                return restart  # queued / finished / unknown job: no-op
            machine = by_id[event.machine]
            if not machine.alive:
                return restart  # faults on dead machines are no-ops
            if action == faultlib.CRASH:
                abort_round(machine)
                members = machine.residents + machine.waiting
                machine.residents = []
                machine.waiting = []
                for job in members:
                    remaining_override[job.name] = machine.remaining_steps.pop(job.name)
                    requeue(job, machine)
                machine.alive = False
                machine.accepting = False
                machine.draining = False
                machine.dead_since = now
                machine.touch()
            elif action == faultlib.LEAVE:
                machine.accepting = False
                if not machine.residents and not machine.waiting:
                    machine.alive = False
                    machine.dead_since = now
                else:
                    machine.draining = True
                machine.touch()
            elif action == faultlib.STRAGGLER_START:
                machine.straggle = machine.straggle + (event.factor,)
            elif action == faultlib.STRAGGLER_END:
                factors = list(machine.straggle)
                if event.factor in factors:
                    factors.remove(event.factor)
                machine.straggle = tuple(factors)
            return restart

        while events:
            if ckpt is not None and events_processed >= ckpt._trigger:
                # Every loop top is a sync point: all state is between
                # events here, so a snapshot (or an interruption) is
                # always resumable.  The inlined ``_trigger`` guard
                # keeps the common no-save iteration to one compare.
                ckpt.tick(events_processed, capture)
            event_time, kind, _, payload = heapq.heappop(events)
            now = event_time
            if kind == _ARRIVAL:
                events_processed += 1
                push_next_arrival()
                job: Job = payload  # type: ignore[assignment]
                offered += 1
                if queue_limit is not None and len(queue) >= queue_limit:
                    if drop_oldest:
                        shed(queue.pop(0), "drop-oldest")
                    else:
                        # The queue is untouched, so nothing to dispatch
                        # and no deadline timer to arm.
                        reject(job, "reject-at-arrival")
                        continue
                queue.append(job)
                depth_log.record(now, len(queue))
                if deadline is not None:
                    heapq.heappush(events, (now + deadline, _EXPIRE, seq, job))
                    seq += 1
                dispatch()
            elif kind == _FAULT:
                events_processed += 1
                restart = apply_fault(payload)  # type: ignore[arg-type]
                dispatch()
                for machine in restart:
                    if not machine.round_active and (
                        machine.residents or machine.waiting
                    ):
                        start_round(machine)
            elif kind == _EXPIRE:
                job = payload  # type: ignore[assignment]
                # Stale timer: the job left the queue (placed, finished,
                # shed) or bought a retry — crash-requeued jobs are
                # exempt from their original deadline.
                if job.name in attempts or job not in queue:
                    continue
                events_processed += 1
                queue.remove(job)
                shed(job, "deadline-expire")
                dispatch()
            else:
                machine_id, epoch = payload  # type: ignore[misc]
                machine = by_id[machine_id]
                if epoch != machine.epoch:
                    continue  # round aborted by a fault: event is stale
                events_processed += 1
                finish_round(machine)
                dispatch()
                if not machine.round_active:
                    start_round(machine)

        if queue:
            if any(m.accepting for m in machines):
                stuck = [job.name for job in queue]
                raise FleetStalled(
                    f"fleet simulation stalled with {len(queue)} jobs queued "
                    f"(policy {self.policy.name!r} kept declining placements): "
                    + ", ".join(stuck),
                    stuck,
                )
            # Dead fleet: no machine can ever accept again.  Abandon the
            # stranded jobs as failures (charged their full retry budget)
            # instead of spinning or deadlocking.
            for job in queue:
                fail_job(job, now, max_retries)
            queue.clear()
            depth_log.record(now, 0)
        return (
            completions,
            placements,
            failures,
            rejections,
            depth_log.finish(),
            offered,
            overhead,
            events_processed,
        )

    # -- the round-compression fast path -------------------------------------------

    def _run_compressed(
        self,
        stream: Iterator[Job],
        machines: list[MachineState],
        injector: FaultInjector,
        controller: AdmissionController,
    ) -> tuple:
        by_id = {m.machine_id: m for m in machines}
        #: Arrival-ordered pending index: insertion order is FIFO arrival
        #: order, removal is O(1) by job name (the reference path's
        #: ``list(queue)`` + ``queue.remove`` is O(n^2) per dispatch).
        pending: dict[str, Job] = {}
        placements: list[Placement] = []
        completions: list[JobCompletion] = []
        failures: list[JobFailure] = []
        rejections: list[JobRejection] = []
        depth_log = _QueueDepthLog(self.series_window)
        queue_limit = controller.queue_limit
        drop_oldest = controller.drop_oldest
        deadline = controller.deadline
        offered = 0
        start_times: dict[str, float] = {}
        #: Execution attempts / restored progress of requeued jobs —
        #: mirrors the reference loop exactly (see _run_reference; an
        #: attempts entry exists only for crash-requeued/failed jobs and
        #: doubles as the deadline exemption).
        attempts: dict[str, int] = {}
        remaining_override: dict[str, int] = {}
        max_retries = injector.max_retries
        overhead = 0.0
        now = 0.0
        seq = 0
        events_processed = 0
        queue_view: tuple[Job, ...] | None = ()

        #: Lazy arrival pull — see _run_reference: one future arrival in
        #: the heap, byte-identical to pushing the trace up front.
        events: list[tuple[float, int, int, object]] = []
        arrivals_pulled = 0
        ckpt = self._ckpt

        def push_next_arrival() -> None:
            nonlocal seq, arrivals_pulled
            job = next(stream, None)
            if job is not None:
                arrivals_pulled += 1
                heapq.heappush(events, (job.arrival_time, _ARRIVAL, seq, job))
                seq += 1

        placements_pack = _PackCache()
        completions_pack = _PackCache()
        if self._resume_payload is None:
            push_next_arrival()
            for instant in injector.timeline():
                heapq.heappush(events, (instant.time, _FAULT, seq, instant))
                seq += 1
        else:
            # Restore the captured loop state wholesale (see
            # _run_reference).  Machines, tracker and heap were pickled
            # as ONE payload, so the seg_records' live references into
            # the machine-local and fleet-wide interference history
            # deques are still shared after the round-trip.
            state = self._resume_payload["state"]
            now = state["now"]
            seq = state["seq"]
            offered = state["offered"]
            overhead = state["overhead"]
            events_processed = state["events_processed"]
            arrivals_pulled = state["arrivals_pulled"]
            events = state["events"]
            pending = state["pending"]
            placements = _unpack_rows(Placement, state["placements"])
            completions = _unpack_rows(JobCompletion, state["completions"])
            placements_pack = _PackCache(seed=state["placements"])
            completions_pack = _PackCache(seed=state["completions"])
            failures = state["failures"]
            rejections = state["rejections"]
            depth_log = state["depth_log"]
            start_times = state["start_times"]
            attempts = state["attempts"]
            remaining_override = state["remaining_override"]
            machines[:] = state["machines"]
            by_id.clear()
            by_id.update((m.machine_id, m) for m in machines)
            queue_view = None

        def capture() -> dict:
            return {
                "mode": "compressed",
                "now": now,
                "seq": seq,
                "offered": offered,
                "overhead": overhead,
                "events_processed": events_processed,
                "arrivals_pulled": arrivals_pulled,
                "events": events,
                "pending": pending,
                "placements": placements_pack.pack(placements),
                "completions": completions_pack.pack(completions),
                "failures": failures,
                "rejections": rejections,
                "depth_log": depth_log,
                "start_times": start_times,
                "attempts": attempts,
                "remaining_override": remaining_override,
                "machines": machines,
                "tracker": self.tracker,
            }

        def next_seq() -> int:
            nonlocal seq
            value = seq
            seq += 1
            return value

        def reject(job: Job, reason: str) -> None:
            rejections.append(
                JobRejection(
                    job=job.name,
                    kind=job.kind,
                    arrival_time=job.arrival_time,
                    rejected_time=now,
                    reason=reason,
                )
            )

        def shed(job: Job, reason: str) -> None:
            remaining_override.pop(job.name, None)
            reject(job, reason)
            depth_log.record(now, len(pending))

        def fleet_state() -> FleetState:
            nonlocal queue_view
            if queue_view is None:
                queue_view = tuple(pending.values())
            # Dirty-flag cache read, as in the reference loop: only
            # touched machines pay the view() rebuild call.
            return FleetState(
                time=now,
                machines=tuple(m._view_cache or m.view() for m in machines),
                queue=queue_view,
                queue_limit=queue_limit,
            )

        def retire_residents(
            machine: MachineState, decrement: int, finish_time: float
        ) -> None:
            """Final-boundary bookkeeping shared by both flush paths:
            advance every resident ``decrement`` steps, retire the
            finished ones as :class:`JobCompletion` records."""
            remaining = machine.remaining_steps
            still_running: list[Job] = []
            for job in machine.residents:
                steps = remaining[job.name] - decrement
                remaining[job.name] = steps
                if steps <= 0:
                    del remaining[job.name]
                    completions.append(
                        JobCompletion(
                            job=job.name,
                            kind=job.kind,
                            machine_id=machine.machine_id,
                            arrival_time=job.arrival_time,
                            start_time=start_times.pop(job.name),
                            finish_time=finish_time,
                            num_steps=job.num_steps,
                            attempts=attempts.get(job.name, 1),
                        )
                    )
                else:
                    still_running.append(job)
            machine.residents = still_running
            machine.round_active = False
            if machine.draining and not machine.residents and not machine.waiting:
                machine.alive = False
                machine.draining = False
                machine.dead_since = finish_time

        def flush_round(machine: MachineState, boundary: float) -> None:
            """Replay one gang-round boundary of the current segment.

            Mirrors the reference path's ``finish_round`` +
            ``start_round`` accounting for one mid-segment round: the
            interference records, counters and the bit-exact
            ``busy_until += round_time`` accumulation.
            """
            for machine_history, fleet_history, slowdown in machine.seg_records:
                machine_history.append(slowdown)
                fleet_history.append(slowdown)
            if machine.seg_blacklist:
                for kind_a, kind_b in machine.seg_blacklist:
                    machine.tracker.mark_blacklisted(kind_a, kind_b)
                    self.tracker.mark_blacklisted(kind_a, kind_b)
                machine.seg_blacklist = ()
            machine.rounds += 1
            if len(machine.residents) > 1:
                machine.corun_rounds += 1
            machine.busy_time += machine.round_time
            machine.seg_rounds_left -= 1
            if machine.seg_rounds_left > 0:
                remaining = machine.remaining_steps
                for job in machine.residents:
                    remaining[job.name] -= 1
                machine.busy_until = boundary + machine.round_time
            else:
                retire_residents(machine, 1, boundary)
            machine.touch()

        def bulk_flush(
            machine: MachineState, now_time: float, allow_now: bool
        ) -> None:
            """Batch-replay a single-resident segment's due boundaries.

            A segment with no resident pairs never records interference,
            so its boundaries need no global ordering against other
            machines — only the bit-exact per-round float accumulation
            (``busy_until``/``busy_time`` advance by one addition per
            round, exactly as the reference loop's per-event updates).
            """
            round_time = machine.round_time
            busy_until = machine.busy_until
            busy_time = machine.busy_time
            left = machine.seg_rounds_left
            flushed = 0
            while left and (
                busy_until < now_time or (busy_until == now_time and allow_now)
            ):
                busy_time += round_time
                flushed += 1
                left -= 1
                if left:
                    busy_until += round_time
            if not flushed:
                return
            machine.busy_time = busy_time
            machine.busy_until = busy_until
            machine.seg_rounds_left = left
            machine.rounds += flushed
            if left:
                remaining = machine.remaining_steps
                for job in machine.residents:
                    remaining[job.name] -= flushed
            else:
                retire_residents(machine, flushed, busy_until)
            machine.touch()

        def sync_to(now_time: float, own: MachineState | None = None) -> None:
            """Flush every unflushed round boundary at or before ``now_time``.

            Boundaries of co-running segments are replayed in global
            ``(time, machine index)`` order — the order the reference
            loop's heap pops equal-time round ends, now that round-end
            events carry the machine's stable numeric index as their tie
            key — so shared interference histories evolve identically;
            pair-free segments batch through :func:`bulk_flush`.  While
            the queue is non-empty only ``own``'s boundary at exactly
            ``now_time`` is flushed: every other machine then has its
            own heap event, and the reference loop dispatches between
            them.  The stable key is what lets the sharded engine
            reconstruct this exact order from independently advanced
            shard logs (:mod:`repro.fleet.sharding`).
            """
            empty_queue = not pending
            flushable: list[tuple[float, int]] = []
            for index, machine in enumerate(machines):
                if not machine.round_active:
                    continue
                boundary = machine.busy_until
                allow_now = empty_queue or machine is own
                if boundary < now_time or (boundary == now_time and allow_now):
                    if machine.seg_records:
                        flushable.append((boundary, index))
                    else:
                        bulk_flush(machine, now_time, allow_now)
            if not flushable:
                return
            heapq.heapify(flushable)
            while flushable:
                boundary, index = heapq.heappop(flushable)
                machine = machines[index]
                flush_round(machine, boundary)
                if machine.round_active:
                    nxt = machine.busy_until
                    if nxt < now_time or (
                        nxt == now_time and (empty_queue or machine is own)
                    ):
                        heapq.heappush(flushable, (nxt, index))

        def truncate(machine: MachineState) -> None:
            """Clamp a running segment to its current round (mix about to
            change, or per-round policy consultation required)."""
            if machine.round_active and machine.seg_rounds_left > 1:
                machine.seg_rounds_left = 1
                machine.epoch += 1
                heapq.heappush(
                    events,
                    (machine.busy_until, _ROUND_END, int(machine.machine_id[1:]),
                     (machine.machine_id, machine.epoch)),
                )

        def start_segment(machine: MachineState) -> None:
            """Admit waiting jobs and batch-schedule the next stable-mix run
            of ``k = min(remaining steps)`` rounds as one heap event."""
            machine.residents.extend(machine.waiting)
            machine.waiting.clear()
            machine.touch()
            if not machine.residents:
                return
            residents = machine.residents
            for job in residents:
                start_times.setdefault(job.name, now)
            base = self.estimator.step_time(machine.machine_name, residents)
            machine.round_base = base
            round_time = scale_step_time(base, machine.straggle)
            machine.round_time = round_time
            machine.busy_until = now + round_time
            machine.round_active = True
            if len(residents) > 1:
                solos = {
                    job.name: self.estimator.solo_time(machine.machine_name, job)
                    for job in residents
                }
                threshold = self.tracker.threshold
                records = []
                crossing = []
                for i, job_a in enumerate(residents):
                    for job_b in residents[i + 1 :]:
                        baseline = max(solos[job_a.name], solos[job_b.name])
                        # Slowdowns compare the *unscaled* duration: a
                        # straggling machine is slow, not a bad pairing.
                        slowdown = (
                            base / baseline - 1.0 if baseline > 0 else 0.0
                        )
                        if slowdown < 0:
                            slowdown = 0.0
                        records.append(
                            (
                                machine.tracker.history_for(job_a.kind, job_b.kind),
                                self.tracker.history_for(job_a.kind, job_b.kind),
                                slowdown,
                            )
                        )
                        if slowdown > threshold:
                            crossing.append((job_a.kind, job_b.kind))
                machine.seg_records = tuple(records)
                machine.seg_blacklist = tuple(crossing)
            else:
                machine.seg_records = ()
                machine.seg_blacklist = ()
            rounds = min(machine.remaining_steps[job.name] for job in residents)
            if pending:
                # Queued jobs are re-dispatched at every round boundary in
                # the reference loop; clamp to one round so the policy sees
                # the identical per-round state sequence.
                rounds = 1
            machine.seg_rounds_left = rounds
            # The segment-end instant accumulates one addition per round —
            # the same float sequence the reference loop's per-round
            # ``now + round_time`` produces.
            end = machine.busy_until
            for _ in range(rounds - 1):
                end += round_time
            machine.epoch += 1
            heapq.heappush(
                events,
                (end, _ROUND_END, int(machine.machine_id[1:]),
                 (machine.machine_id, machine.epoch)),
            )

        def dispatch() -> None:
            nonlocal overhead, queue_view
            for job in list(pending.values()):
                state = fleet_state()
                tick = _time.perf_counter()
                choice = self.policy.place(job, state)
                overhead += _time.perf_counter() - tick
                if choice is None:
                    continue
                machine = by_id[choice]
                if machine.free_slots <= 0:
                    raise RuntimeError(
                        f"policy {self.policy.name!r} placed {job.name!r} on full "
                        f"machine {choice!r}"
                    )
                del pending[job.name]
                queue_view = None
                depth_log.record(now, len(pending))
                machine.waiting.append(job)
                machine.remaining_steps[job.name] = remaining_override.pop(
                    job.name, job.num_steps
                )
                machine.touch()
                placements.append(
                    Placement(
                        job=job.name, kind=job.kind, machine_id=choice, time=now
                    )
                )
                if not machine.round_active:
                    start_segment(machine)
                else:
                    # The new member joins at the next boundary: the mix
                    # changes there, so the segment must end there too.
                    truncate(machine)

        def fail_job(job: Job, time: float, count: int) -> None:
            attempts[job.name] = count
            remaining_override.pop(job.name, None)
            failures.append(
                JobFailure(
                    job=job.name,
                    kind=job.kind,
                    arrival_time=job.arrival_time,
                    attempts=count,
                    failed_time=time,
                )
            )

        def abort_segment(machine: MachineState) -> None:
            """Discard an in-flight round and the rest of its segment.

            Every boundary up to ``now`` was already flushed by the
            handler's ``sync_to``, so only the partial round between the
            last boundary and ``busy_until`` is destroyed — exactly the
            round the reference loop's ``abort_round`` discards."""
            if machine.round_active:
                machine.lost_steps += len(machine.residents)
                machine.round_active = False
                machine.seg_rounds_left = 0
                machine.seg_records = ()
                machine.seg_blacklist = ()
                machine.epoch += 1
                machine.busy_until = now
                machine.touch()

        def check_drained(machine: MachineState) -> None:
            if machine.draining and not machine.residents and not machine.waiting:
                machine.alive = False
                machine.draining = False
                machine.dead_since = now
                machine.touch()

        def requeue(job: Job, machine: MachineState) -> None:
            nonlocal queue_view
            count = attempts.get(job.name, 1)
            if count >= max_retries:
                fail_job(job, now, count)
            else:
                attempts[job.name] = count + 1
                machine.retries += 1
                pending[job.name] = job
                queue_view = None
                depth_log.record(now, len(pending))

        def apply_fault(instant: FaultInstant) -> list[MachineState]:
            """Mirror of the reference loop's fault application; the
            caller has already flushed every boundary due at ``now``."""
            nonlocal queue_view
            event = instant.event
            action = instant.action
            restart: list[MachineState] = []
            if action == faultlib.JOIN:
                new = MachineState(
                    machine_id=f"m{len(machines)}",
                    machine_name=event.machine_name,
                    capacity=self.max_corun,
                    tracker=InterferenceTracker(threshold=self.tracker.threshold),
                    joined_at=now,
                )
                machines.append(new)
                by_id[new.machine_id] = new
                return restart
            if action == faultlib.PREEMPT:
                for machine in machines:
                    if not machine.alive:
                        continue
                    resident = next(
                        (j for j in machine.residents if j.name == event.job), None
                    )
                    if resident is not None:
                        abort_segment(machine)
                        machine.residents.remove(resident)
                        remaining_override[resident.name] = machine.remaining_steps.pop(
                            resident.name
                        )
                        machine.preemptions += 1
                        machine.touch()
                        pending[resident.name] = resident
                        queue_view = None
                        depth_log.record(now, len(pending))
                        check_drained(machine)
                        if machine.alive:
                            restart.append(machine)
                        return restart
                    waiter = next(
                        (j for j in machine.waiting if j.name == event.job), None
                    )
                    if waiter is not None:
                        machine.waiting.remove(waiter)
                        remaining_override[waiter.name] = machine.remaining_steps.pop(
                            waiter.name
                        )
                        machine.preemptions += 1
                        machine.touch()
                        pending[waiter.name] = waiter
                        queue_view = None
                        depth_log.record(now, len(pending))
                        check_drained(machine)
                        return restart
                return restart  # queued / finished / unknown job: no-op
            machine = by_id[event.machine]
            if not machine.alive:
                return restart  # faults on dead machines are no-ops
            if action == faultlib.CRASH:
                abort_segment(machine)
                members = machine.residents + machine.waiting
                machine.residents = []
                machine.waiting = []
                for job in members:
                    remaining_override[job.name] = machine.remaining_steps.pop(job.name)
                    requeue(job, machine)
                machine.alive = False
                machine.accepting = False
                machine.draining = False
                machine.dead_since = now
                machine.touch()
            elif action == faultlib.LEAVE:
                machine.accepting = False
                if not machine.residents and not machine.waiting:
                    machine.alive = False
                    machine.dead_since = now
                else:
                    machine.draining = True
                machine.touch()
            elif action == faultlib.STRAGGLER_START:
                machine.straggle = machine.straggle + (event.factor,)
                # Rounds past this instant run at the new speed, so the
                # current segment may not extend beyond its current round.
                truncate(machine)
            elif action == faultlib.STRAGGLER_END:
                factors = list(machine.straggle)
                if event.factor in factors:
                    factors.remove(event.factor)
                machine.straggle = tuple(factors)
                truncate(machine)
            return restart

        while events:
            if ckpt is not None and events_processed >= ckpt._trigger:
                # Loop tops are sync points: all boundaries due strictly
                # before the previous event are flushed, so the captured
                # state round-trips exactly.  The inlined ``_trigger``
                # guard keeps the common no-save iteration to one compare.
                ckpt.tick(events_processed, capture)
            event_time, kind, event_seq, payload = heapq.heappop(events)
            now = event_time
            if kind == _ARRIVAL:
                events_processed += 1
                push_next_arrival()
                # Every admission decision is a mandatory boundary:
                # replay due rounds first (the queue-emptiness gate must
                # be read *before* this arrival joins).
                sync_to(now)
                job: Job = payload  # type: ignore[assignment]
                offered += 1
                admitted = True
                if queue_limit is not None and len(pending) >= queue_limit:
                    if drop_oldest:
                        oldest = next(iter(pending))
                        victim = pending.pop(oldest)
                        queue_view = None
                        shed(victim, "drop-oldest")
                    else:
                        reject(job, "reject-at-arrival")
                        admitted = False
                if admitted:
                    pending[job.name] = job
                    queue_view = None
                    depth_log.record(now, len(pending))
                    if deadline is not None:
                        heapq.heappush(
                            events, (now + deadline, _EXPIRE, next_seq(), job)
                        )
                    dispatch()
            elif kind == _FAULT:
                events_processed += 1
                # Every fault instant is a mandatory segment boundary:
                # replay all due rounds through the global order first,
                # then mutate the fleet.
                sync_to(now)
                restart = apply_fault(payload)  # type: ignore[arg-type]
                dispatch()
                for machine in restart:
                    if not machine.round_active and (
                        machine.residents or machine.waiting
                    ):
                        start_segment(machine)
            elif kind == _EXPIRE:
                job = payload  # type: ignore[assignment]
                # Stale timer — mirrors the reference loop's check; no
                # state changed, so no boundary needs flushing.
                if job.name in attempts or job.name not in pending:
                    continue
                events_processed += 1
                # A live expiry sheds from a non-empty queue, so every
                # segment is already clamped: boundaries *at* now had
                # their own heap events (processed first by kind order),
                # and sync_to replays the strictly earlier ones.
                sync_to(now)
                del pending[job.name]
                queue_view = None
                shed(job, "deadline-expire")
                dispatch()
            else:
                machine_id, epoch = payload  # type: ignore[misc]
                machine = by_id[machine_id]
                if epoch != machine.epoch:
                    continue  # superseded by a truncation or a new segment
                events_processed += 1
                sync_to(now, own=machine)
                dispatch()
                if not machine.round_active:
                    start_segment(machine)
            if pending:
                # Reference semantics: with jobs queued, every machine's
                # every round boundary triggers a fresh dispatch.
                for m in machines:
                    truncate(m)

        if pending:
            if any(m.accepting for m in machines):
                stuck = list(pending)
                raise FleetStalled(
                    f"fleet simulation stalled with {len(pending)} jobs queued "
                    f"(policy {self.policy.name!r} kept declining placements): "
                    + ", ".join(stuck),
                    stuck,
                )
            for job in list(pending.values()):
                fail_job(job, now, max_retries)
            pending.clear()
            queue_view = None
            depth_log.record(now, 0)
        return (
            completions,
            placements,
            failures,
            rejections,
            depth_log.finish(),
            offered,
            overhead,
            events_processed,
        )
