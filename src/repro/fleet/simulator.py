"""Event-driven fleet simulator: a stream of jobs over many zoo machines.

This is the paper's co-run question raised one level: instead of *which
ready ops share one chip's cores* (Strategy 3/4, Tables III/VII), the
fleet simulator decides *which jobs share one machine* — using the same
predictions (hill-climbing step-time estimates) and the same generalized
interference signals.

Execution model
---------------
Each machine runs its resident jobs as **gang rounds**: all residents
advance one training step per round, and the round's duration is the
simulated step time of their merged graph under the full runtime
(:mod:`repro.fleet.estimates`).  Jobs join and leave at round
boundaries; a placement policy (:mod:`repro.fleet.policies`) assigns
arriving and queued jobs to machines.  After every co-run round the
machine records the observed pairing slowdowns into its local
:class:`~repro.core.interference.InterferenceTracker`, and the simulator
merges that round's delta into the fleet-wide tracker — so a pairing one
machine found harmful steers placements everywhere.

Everything is deterministic for a fixed (job trace, policy, machine
set): events are heap-ordered with explicit tie-breakers, estimates are
pure functions, and wall-clock only appears in the separately reported
scheduler-overhead figure.
"""

from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.config import RuntimeConfig
from repro.core.interference import InterferenceSnapshot, InterferenceTracker
from repro.fleet.estimates import StepTimeEstimator
from repro.fleet.job import Job
from repro.fleet.policies import PlacementPolicy, make_policy
from repro.fleet.state import (
    DEFAULT_INTERFERENCE_THRESHOLD,
    FleetState,
    MachineState,
    Placement,
)
from repro.hardware.zoo import get_machine
from repro.sweep.executor import SweepExecutor

#: Default number of jobs allowed to share one machine (the paper's
#: co-run studies pair two workloads; capacity 2 is the sweet spot where
#: Strategy 3/4 still have idle resources to fill).
DEFAULT_MAX_CORUN = 2


@dataclass(frozen=True)
class JobCompletion:
    """Lifecycle record of one finished job."""

    job: str
    kind: str
    machine_id: str
    arrival_time: float
    start_time: float
    finish_time: float
    num_steps: int

    @property
    def wait_time(self) -> float:
        return self.start_time - self.arrival_time

    @property
    def turnaround_time(self) -> float:
        return self.finish_time - self.arrival_time


@dataclass(frozen=True)
class MachineReport:
    """Per-machine aggregate of one fleet simulation."""

    machine_id: str
    machine_name: str
    jobs_served: int
    rounds: int
    corun_rounds: int
    busy_time: float
    utilization: float
    #: Pairings *this* machine observed crossing the threshold (the
    #: fleet-wide blacklist is the union of these, shared via
    #: snapshot()/merge()).
    local_blacklist: tuple[tuple[str, str], ...] = ()


@dataclass
class FleetResult:
    """Outcome of simulating one job trace under one placement policy."""

    policy_name: str
    machine_names: tuple[str, ...]
    num_jobs: int
    makespan: float
    completions: tuple[JobCompletion, ...]
    placements: tuple[Placement, ...]
    machine_reports: tuple[MachineReport, ...]
    blacklisted_pairs: tuple[tuple[str, str], ...]
    #: Wall-clock seconds spent inside policy decisions (NOT part of the
    #: deterministic outcome; excluded from determinism digests).
    scheduler_overhead_seconds: float = 0.0
    #: Estimator traffic: how many step-time estimates the run requested
    #: and how many were actually simulated (the rest were memo hits).
    estimates_requested: int = 0
    estimates_computed: int = 0

    @property
    def mean_wait_time(self) -> float:
        return sum(c.wait_time for c in self.completions) / len(self.completions)

    @property
    def mean_turnaround_time(self) -> float:
        return sum(c.turnaround_time for c in self.completions) / len(self.completions)

    def to_dict(self, *, include_overhead: bool = True) -> dict:
        """JSON-ready summary; ``include_overhead=False`` restricts the
        dict to the deterministic fields (the determinism-gate digest)."""
        out = {
            "policy": self.policy_name,
            "machines": list(self.machine_names),
            "num_jobs": self.num_jobs,
            "makespan": self.makespan,
            "mean_wait_time": self.mean_wait_time,
            "mean_turnaround_time": self.mean_turnaround_time,
            "completions": [
                {
                    "job": c.job,
                    "kind": c.kind,
                    "machine": c.machine_id,
                    "arrival": c.arrival_time,
                    "start": c.start_time,
                    "finish": c.finish_time,
                    "steps": c.num_steps,
                }
                for c in self.completions
            ],
            "machine_reports": [
                {
                    "machine": m.machine_id,
                    "name": m.machine_name,
                    "jobs_served": m.jobs_served,
                    "rounds": m.rounds,
                    "corun_rounds": m.corun_rounds,
                    "busy_time": m.busy_time,
                    "utilization": m.utilization,
                    "local_blacklist": [list(pair) for pair in m.local_blacklist],
                }
                for m in self.machine_reports
            ],
            "blacklisted_pairs": [list(pair) for pair in self.blacklisted_pairs],
        }
        if include_overhead:
            out["scheduler_overhead_seconds"] = self.scheduler_overhead_seconds
            out["estimates_requested"] = self.estimates_requested
            out["estimates_computed"] = self.estimates_computed
        return out


#: Event kinds, ordered: at equal timestamps round boundaries retire
#: jobs and free slots *before* arrivals are placed.
_ROUND_END = 0
_ARRIVAL = 1


class FleetSimulator:
    """Simulate a stream of jobs over a set of zoo machines.

    Parameters
    ----------
    machines:
        Zoo names of the fleet's machines (duplicates welcome — five
        ``"desktop-8c"`` entries model a homogeneous rack).  Machine ids
        are ``m0``, ``m1``, ... in the given order.
    policy:
        A policy name from :data:`repro.fleet.policies.POLICIES` or a
        ready :class:`~repro.fleet.policies.PlacementPolicy` instance.
    executor:
        Optional :class:`~repro.sweep.executor.SweepExecutor` the
        step-time estimator fans out over (and whose cache it reuses).
    config:
        Runtime configuration for the per-machine co-run simulations.
    max_corun:
        Job slots per machine.
    interference_threshold:
        Pairing-slowdown blacklist threshold of the fleet-wide tracker.
    """

    def __init__(
        self,
        machines: Sequence[str],
        *,
        policy: str | PlacementPolicy = "interference-aware",
        executor: SweepExecutor | None = None,
        estimator: StepTimeEstimator | None = None,
        config: RuntimeConfig | None = None,
        max_corun: int = DEFAULT_MAX_CORUN,
        interference_threshold: float = DEFAULT_INTERFERENCE_THRESHOLD,
    ) -> None:
        if not machines:
            raise ValueError("a fleet needs at least one machine")
        if max_corun < 1:
            raise ValueError("max_corun must be at least 1")
        for name in machines:
            get_machine(name)  # fail fast on dangling zoo names
        self.machine_names = tuple(machines)
        self.max_corun = max_corun
        self.config = config or RuntimeConfig()
        self.estimator = estimator or StepTimeEstimator(executor=executor, config=self.config)
        self.tracker = InterferenceTracker(threshold=interference_threshold)
        if isinstance(policy, str):
            self.policy = make_policy(
                policy, estimator=self.estimator, tracker=self.tracker
            )
        else:
            self.policy = policy
        #: Tracker state at first run entry (pre-seeded knowledge included);
        #: every later run() resets to it so repeated runs are identical.
        self._tracker_baseline: "InterferenceSnapshot | None" = None

    # -- the event loop -----------------------------------------------------------

    def run(self, jobs: Sequence[Job], *, prewarm: bool = True) -> FleetResult:
        """Simulate ``jobs`` arriving and running to completion."""
        if not jobs:
            raise ValueError("a fleet simulation needs at least one job")
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError("job names must be unique within a trace")
        # Same inputs -> same outcome, even on a reused simulator: the
        # fleet-wide tracker restarts from its first-run baseline (which
        # keeps any knowledge the caller pre-seeded), and estimator stats
        # are reported as per-run deltas.
        if self._tracker_baseline is None:
            self._tracker_baseline = self.tracker.snapshot()
        else:
            self.tracker.clear()
            self.tracker.merge(self._tracker_baseline)
        requests_before = self.estimator.stats.requests
        computed_before = self.estimator.stats.computed
        if prewarm:
            # Solo estimates dominate policy traffic; batch them through
            # the sweep engine up front (parallel under a process backend).
            self.estimator.prewarm(self.machine_names, jobs)

        machines = [
            MachineState(
                machine_id=f"m{index}",
                machine_name=name,
                capacity=self.max_corun,
                tracker=InterferenceTracker(threshold=self.tracker.threshold),
            )
            for index, name in enumerate(self.machine_names)
        ]
        by_id = {m.machine_id: m for m in machines}
        queue: list[Job] = []
        placements: list[Placement] = []
        completions: list[JobCompletion] = []
        start_times: dict[str, float] = {}
        overhead = 0.0
        now = 0.0
        seq = 0

        #: (time, kind, seq, payload) — kind orders round-ends before
        #: arrivals at equal timestamps, seq keeps FIFO among equals.
        events: list[tuple[float, int, int, object]] = []
        for job in sorted(jobs, key=lambda j: (j.arrival_time, j.name)):
            heapq.heappush(events, (job.arrival_time, _ARRIVAL, seq, job))
            seq += 1

        def fleet_state() -> FleetState:
            return FleetState(
                time=now,
                machines=tuple(m.view() for m in machines),
                queue=tuple(queue),
            )

        def start_round(machine: MachineState) -> None:
            nonlocal seq
            machine.residents.extend(machine.waiting)
            machine.waiting.clear()
            if not machine.residents:
                return
            for job in machine.residents:
                start_times.setdefault(job.name, now)
            round_time = self.estimator.step_time(
                machine.machine_name, machine.residents
            )
            machine.round_time = round_time
            machine.busy_until = now + round_time
            machine.round_active = True
            machine.busy_time += round_time
            machine.rounds += 1
            if len(machine.residents) > 1:
                machine.corun_rounds += 1
            heapq.heappush(events, (machine.busy_until, _ROUND_END, seq, machine.machine_id))
            seq += 1

        def finish_round(machine: MachineState) -> None:
            machine.round_active = False
            residents = list(machine.residents)
            # Observe pairing slowdowns before anyone departs.
            if len(residents) > 1:
                duration = machine.round_time
                delta = InterferenceTracker(threshold=self.tracker.threshold)
                solos = {
                    job.name: self.estimator.solo_time(machine.machine_name, job)
                    for job in residents
                }
                for i, job_a in enumerate(residents):
                    for job_b in residents[i + 1 :]:
                        baseline = max(solos[job_a.name], solos[job_b.name])
                        slowdown = duration / baseline - 1.0 if baseline > 0 else 0.0
                        delta.record(job_a.kind, job_b.kind, slowdown)
                snapshot = delta.snapshot()
                machine.tracker.merge(snapshot)
                self.tracker.merge(snapshot)
            # Advance every resident by one step; retire the finished.
            still_running: list[Job] = []
            for job in residents:
                remaining = machine.remaining_steps[job.name] - 1
                machine.remaining_steps[job.name] = remaining
                if remaining <= 0:
                    del machine.remaining_steps[job.name]
                    completions.append(
                        JobCompletion(
                            job=job.name,
                            kind=job.kind,
                            machine_id=machine.machine_id,
                            arrival_time=job.arrival_time,
                            start_time=start_times[job.name],
                            finish_time=now,
                            num_steps=job.num_steps,
                        )
                    )
                else:
                    still_running.append(job)
            machine.residents = still_running

        def dispatch() -> None:
            nonlocal overhead
            # FIFO over the queue; a job the policy declines stays queued
            # (later jobs may still fit — no head-of-line blocking).
            for job in list(queue):
                state = fleet_state()
                tick = _time.perf_counter()
                choice = self.policy.place(job, state)
                overhead += _time.perf_counter() - tick
                if choice is None:
                    continue
                machine = by_id[choice]
                if machine.free_slots <= 0:
                    raise RuntimeError(
                        f"policy {self.policy.name!r} placed {job.name!r} on full "
                        f"machine {choice!r}"
                    )
                queue.remove(job)
                machine.waiting.append(job)
                machine.remaining_steps[job.name] = job.num_steps
                placements.append(
                    Placement(
                        job=job.name, kind=job.kind, machine_id=choice, time=now
                    )
                )
                if not machine.round_active:
                    start_round(machine)

        while events:
            event_time, kind, _, payload = heapq.heappop(events)
            now = event_time
            if kind == _ARRIVAL:
                queue.append(payload)  # type: ignore[arg-type]
            else:
                machine = by_id[payload]  # type: ignore[index]
                finish_round(machine)
            dispatch()
            if kind == _ROUND_END:
                machine = by_id[payload]  # type: ignore[index]
                if not machine.round_active:
                    start_round(machine)

        if queue:
            raise RuntimeError(
                f"fleet simulation stalled with {len(queue)} jobs queued "
                f"(policy {self.policy.name!r} kept declining placements)"
            )

        makespan = max(c.finish_time for c in completions)
        served: dict[str, int] = {m.machine_id: 0 for m in machines}
        for placement in placements:
            served[placement.machine_id] += 1
        reports = tuple(
            MachineReport(
                machine_id=m.machine_id,
                machine_name=m.machine_name,
                jobs_served=served[m.machine_id],
                rounds=m.rounds,
                corun_rounds=m.corun_rounds,
                busy_time=m.busy_time,
                utilization=m.busy_time / makespan if makespan > 0 else 0.0,
                local_blacklist=m.tracker.blacklisted_pairs(),
            )
            for m in machines
        )
        return FleetResult(
            policy_name=self.policy.name,
            machine_names=self.machine_names,
            num_jobs=len(jobs),
            makespan=makespan,
            completions=tuple(sorted(completions, key=lambda c: (c.finish_time, c.job))),
            placements=tuple(placements),
            machine_reports=reports,
            blacklisted_pairs=self.tracker.blacklisted_pairs(),
            scheduler_overhead_seconds=overhead,
            estimates_requested=self.estimator.stats.requests - requests_before,
            estimates_computed=self.estimator.stats.computed - computed_before,
        )
