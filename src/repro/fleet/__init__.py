"""Interference-aware multi-machine job placement (the fleet layer).

The layer between the single-machine runtime (PR 1), the sweep engine
(PR 2) and the machine zoo / scenario registry (PR 3): a stream of
training jobs (:mod:`repro.fleet.job`) is placed across zoo machines by
a pluggable policy (:mod:`repro.fleet.policies`) and executed by an
event-driven simulator (:mod:`repro.fleet.simulator`) whose per-machine
rounds run on the existing merged-graph co-run path with cached
step-time estimates (:mod:`repro.fleet.estimates`).  The simulator's
round-compression fast path batch-advances stable job mixes in closed
form — O(mix changes) heap events instead of O(total training steps) —
and stays byte-identical to the seed loop
(``FleetSimulator(compressed=False)``), which keeps 1,000-job traces
interactive and 5,000-job traces feasible.

Entry points: :func:`repro.api.run_fleet`, the ``fleet`` experiment
(``python -m repro.experiments fleet``) and ``benchmarks/fleet_bench.py``.
"""

from repro.fleet.estimates import StepTimeEstimator, canonical_mix, corun_step_time
from repro.fleet.job import DEFAULT_JOB_MIX, Job, generate_trace, jobs_from_scenario
from repro.fleet.policies import (
    POLICIES,
    FirstFitPolicy,
    InterferenceAwarePolicy,
    LoadBalancedPolicy,
    PlacementPolicy,
    available_policies,
    make_policy,
)
from repro.fleet.simulator import (
    DEFAULT_MAX_CORUN,
    FleetResult,
    FleetSimulator,
    JobCompletion,
    MachineReport,
)
from repro.fleet.state import FleetState, MachineState, MachineView, Placement

__all__ = [
    "DEFAULT_JOB_MIX",
    "DEFAULT_MAX_CORUN",
    "FirstFitPolicy",
    "FleetResult",
    "FleetSimulator",
    "FleetState",
    "InterferenceAwarePolicy",
    "Job",
    "JobCompletion",
    "LoadBalancedPolicy",
    "MachineReport",
    "MachineState",
    "MachineView",
    "POLICIES",
    "Placement",
    "PlacementPolicy",
    "StepTimeEstimator",
    "available_policies",
    "canonical_mix",
    "corun_step_time",
    "generate_trace",
    "jobs_from_scenario",
    "make_policy",
]
