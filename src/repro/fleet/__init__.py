"""Interference-aware multi-machine job placement (the fleet layer).

The layer between the single-machine runtime (PR 1), the sweep engine
(PR 2) and the machine zoo / scenario registry (PR 3): a stream of
training jobs (:mod:`repro.fleet.job`) is placed across zoo machines by
a pluggable policy (:mod:`repro.fleet.policies`) and executed by an
event-driven simulator (:mod:`repro.fleet.simulator`) whose per-machine
rounds run on the existing merged-graph co-run path with cached
step-time estimates (:mod:`repro.fleet.estimates`).  The simulator's
round-compression fast path batch-advances stable job mixes in closed
form — O(mix changes) heap events instead of O(total training steps) —
and stays byte-identical to the seed loop
(``FleetSimulator(compressed=False)``), which keeps 1,000-job traces
interactive and 5,000-job traces feasible.

Deterministic fault injection (:mod:`repro.fleet.faults`) layers machine
churn, graceful drains, straggler windows and job preemption over any
trace as a declarative seeded :class:`~repro.fleet.faults.FaultPlan` —
consulted by both simulator loops, with the compressed path still
byte-identical to the reference loop under faults.

The sharded engine (:mod:`repro.fleet.sharding`) partitions the
machines into disjoint shards advanced independently between fleet-wide
synchronisation points — placements and fault/admission instants are
the only cross-shard coupling — optionally fanning shard windows out
over :class:`~repro.sweep.SweepExecutor` worker processes, with a
deterministic input-ordered merge that keeps
``FleetSimulator(shards=N)`` byte-identical to the single-process
compressed path for every N and backend.

Open-loop service (:mod:`repro.fleet.arrivals`): seeded lazy arrival
processes (Poisson, diurnal, bursty heavy-tail, replay) stream jobs
into the simulator event-by-event — a million-job trace never
materialises — and an :class:`~repro.fleet.arrivals.AdmissionController`
(bounded queue, per-job deadlines, shed policies) turns overload into
explicit :class:`~repro.fleet.simulator.JobRejection` records, SLO
percentiles and windowed backlog/throughput series on the result.

Entry points: :func:`repro.api.run_fleet`, the ``fleet`` experiment
(``python -m repro.experiments fleet``) and ``benchmarks/fleet_bench.py``.
"""

from repro.fleet.arrivals import (
    ARRIVAL_KINDS,
    AdmissionController,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    ReplayArrivals,
    arrival_from_dict,
    build_arrivals,
    resolve_arrivals,
)
from repro.fleet.estimates import (
    EstimatorStats,
    StepTimeEstimator,
    canonical_mix,
    corun_step_time,
    scale_step_time,
)
from repro.fleet.sharding import FANOUT_MIN_DUE, advance_shard, run_sharded
from repro.fleet.faults import (
    DEFAULT_MAX_RETRIES,
    FaultInjector,
    FaultPlan,
    JobPreempt,
    MachineCrash,
    MachineJoin,
    MachineLeave,
    Straggler,
    generate_fault_plan,
    resolve_fault_plan,
)
from repro.fleet.job import (
    DEFAULT_JOB_MIX,
    Job,
    generate_trace,
    jobs_from_scenario,
    validate_trace,
)
from repro.fleet.policies import (
    POLICIES,
    FirstFitPolicy,
    InterferenceAwarePolicy,
    LoadBalancedPolicy,
    PlacementPolicy,
    available_policies,
    make_policy,
)
from repro.fleet.simulator import (
    DEFAULT_MAX_CORUN,
    OVERHEAD_KEYS,
    FleetResult,
    FleetSimulator,
    FleetStalled,
    JobCompletion,
    JobFailure,
    JobRejection,
    MachineReport,
    exact_percentiles,
)
from repro.fleet.state import FleetState, MachineState, MachineView, Placement

__all__ = [
    "ARRIVAL_KINDS",
    "AdmissionController",
    "ArrivalProcess",
    "BurstyArrivals",
    "DEFAULT_JOB_MIX",
    "DEFAULT_MAX_CORUN",
    "DEFAULT_MAX_RETRIES",
    "DiurnalArrivals",
    "EstimatorStats",
    "FANOUT_MIN_DUE",
    "FaultInjector",
    "FaultPlan",
    "FirstFitPolicy",
    "FleetResult",
    "FleetSimulator",
    "FleetStalled",
    "FleetState",
    "InterferenceAwarePolicy",
    "Job",
    "JobCompletion",
    "JobFailure",
    "JobPreempt",
    "JobRejection",
    "LoadBalancedPolicy",
    "MachineCrash",
    "MachineJoin",
    "MachineLeave",
    "MachineReport",
    "MachineState",
    "MachineView",
    "OVERHEAD_KEYS",
    "POLICIES",
    "Placement",
    "PlacementPolicy",
    "PoissonArrivals",
    "ReplayArrivals",
    "StepTimeEstimator",
    "Straggler",
    "advance_shard",
    "arrival_from_dict",
    "available_policies",
    "build_arrivals",
    "canonical_mix",
    "corun_step_time",
    "exact_percentiles",
    "generate_fault_plan",
    "generate_trace",
    "jobs_from_scenario",
    "make_policy",
    "resolve_arrivals",
    "resolve_fault_plan",
    "run_sharded",
    "scale_step_time",
    "validate_trace",
]
