"""Deterministic fault injection for the fleet simulator.

Production fleets are not the healthy static machine zoo the benchmark
traces assume: machines crash and join mid-trace, operators drain hosts
for maintenance, co-tenants turn a box into a straggler, and higher
priority work preempts running jobs.  This module models all of that as
a **declarative, seeded plan** — a :class:`FaultPlan` of timestamped
events — that the :class:`~repro.fleet.simulator.FleetSimulator`
consults through a :class:`FaultInjector` in *both* of its loops, so the
round-compression fast path stays byte-identical to the reference loop
even while faults interrupt segments asynchronously.

Event types
-----------
* :class:`MachineCrash` — the machine dies instantly and permanently.
  Its in-flight gang round is aborted (each resident loses the step in
  progress — the ``lost_steps`` accounting), and every resident and
  admitted-but-waiting job is requeued with its progress restored to the
  last completed round boundary.  Each crash-requeue burns one entry of
  the job's retry budget: a job whose ``attempts`` would exceed
  ``FaultPlan.max_retries`` is marked **failed** instead of requeued.
* :class:`MachineJoin` — a new zoo machine enters the fleet mid-trace
  (ids continue the ``m0, m1, ...`` numbering in application order).
* :class:`MachineLeave` — graceful drain: the machine stops accepting
  placements immediately, runs its current members to completion, then
  leaves the fleet.
* :class:`Straggler` — the machine's gang rounds run ``factor`` times
  slower for ``duration`` simulated seconds.  The scaling is applied by
  the simulator *on top of* the estimator's step times (see
  :func:`repro.fleet.estimates.scale_step_time`), so the shared
  step-time cache never sees a polluted value, and interference records
  keep using the unscaled duration (a slow machine is not a bad
  pairing).  Rounds already in flight when a window opens or closes keep
  the duration they started with.
* :class:`JobPreempt` — the named job is yanked back to the queue at the
  given instant.  The machine's in-flight round is aborted (all its
  residents lose the step in progress) and the survivors restart
  immediately; the preempted job keeps its completed-round progress and
  does **not** burn retry budget.  Preempting a queued, finished or
  unknown job is a no-op.

Determinism
-----------
A plan is a value: the same ``(trace, policy, machines, plan)`` always
produces the identical outcome, fault events at equal instants apply in
plan order, and a fault instant always applies *after* any gang round
completing at that exact instant (and before any job arriving at it).
:func:`generate_fault_plan` derives random-but-seeded plans from churn /
straggler / preemption rates, and :meth:`FaultPlan.to_dict` /
:meth:`FaultPlan.from_dict` round-trip plans through JSON exactly —
which is what the scenario registry's fault specs
(:func:`repro.scenarios.register_fault_spec`) and the CLI's
``--fault-plan`` flag carry.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Sequence, Union

from repro.hardware.zoo import get_machine
from repro.utils.seeding import make_rng


def _check_time(time: float, what: str) -> None:
    if not math.isfinite(time) or time < 0:
        raise ValueError(f"{what} time must be finite and non-negative, got {time!r}")


@dataclass(frozen=True)
class MachineCrash:
    """Machine ``machine`` dies permanently at ``time``."""

    time: float
    machine: str

    def __post_init__(self) -> None:
        _check_time(self.time, "crash")
        if not self.machine:
            raise ValueError("crash needs a machine id")


@dataclass(frozen=True)
class MachineJoin:
    """A new ``machine_name`` zoo machine enters the fleet at ``time``."""

    time: float
    machine_name: str

    def __post_init__(self) -> None:
        _check_time(self.time, "join")
        get_machine(self.machine_name)  # fail fast on dangling zoo names


@dataclass(frozen=True)
class MachineLeave:
    """Machine ``machine`` drains gracefully starting at ``time``."""

    time: float
    machine: str

    def __post_init__(self) -> None:
        _check_time(self.time, "leave")
        if not self.machine:
            raise ValueError("leave needs a machine id")


@dataclass(frozen=True)
class Straggler:
    """Machine ``machine`` runs ``factor`` x slower in
    ``[time, time + duration)``."""

    time: float
    machine: str
    factor: float
    duration: float

    def __post_init__(self) -> None:
        _check_time(self.time, "straggler")
        if not self.machine:
            raise ValueError("straggler needs a machine id")
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ValueError(f"straggler factor must be positive, got {self.factor!r}")
        if not math.isfinite(self.duration) or self.duration <= 0:
            raise ValueError(
                f"straggler duration must be positive, got {self.duration!r}"
            )


@dataclass(frozen=True)
class JobPreempt:
    """Job ``job`` is yanked back to the queue at ``time``."""

    time: float
    job: str

    def __post_init__(self) -> None:
        _check_time(self.time, "preempt")
        if not self.job:
            raise ValueError("preempt needs a job name")


FaultEvent = Union[MachineCrash, MachineJoin, MachineLeave, Straggler, JobPreempt]

#: Serialization tags, one per event type.
_EVENT_KINDS: dict[type, str] = {
    MachineCrash: "crash",
    MachineJoin: "join",
    MachineLeave: "leave",
    Straggler: "straggler",
    JobPreempt: "preempt",
}
_KIND_TYPES = {kind: cls for cls, kind in _EVENT_KINDS.items()}

#: Timeline actions the simulator dispatches on.  A :class:`Straggler`
#: expands into two instants (window open / window close); every other
#: event is a single instant.
CRASH = "crash"
JOIN = "join"
LEAVE = "leave"
STRAGGLER_START = "straggler-start"
STRAGGLER_END = "straggler-end"
PREEMPT = "preempt"


@dataclass(frozen=True)
class FaultInstant:
    """One timestamped action of an expanded fault timeline."""

    time: float
    action: str
    event: FaultEvent


#: Default per-job execution-attempt budget: a job may be started up to
#: this many times before a crash marks it failed.
DEFAULT_MAX_RETRIES = 3


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, ordered set of fault events plus the retry budget.

    ``max_retries`` is the maximum number of execution attempts per job
    (first placement included): a job whose machine crashes after its
    ``max_retries``-th attempt is marked failed instead of requeued, and
    a job abandoned because no machine can ever accept it is charged the
    full budget (``attempts == max_retries``).
    """

    events: tuple[FaultEvent, ...] = ()
    max_retries: int = DEFAULT_MAX_RETRIES

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if type(event) not in _EVENT_KINDS:
                raise TypeError(f"not a fault event: {event!r}")
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def timeline(self) -> tuple[FaultInstant, ...]:
        """The plan expanded into sorted instants.

        Stragglers contribute a window-open and a window-close instant;
        ties at equal times resolve by plan order, so a plan is a total
        order of actions.
        """
        keyed: list[tuple[float, int, int, FaultInstant]] = []
        for index, event in enumerate(self.events):
            if isinstance(event, Straggler):
                keyed.append(
                    (event.time, index, 0, FaultInstant(event.time, STRAGGLER_START, event))
                )
                end = event.time + event.duration
                keyed.append((end, index, 1, FaultInstant(end, STRAGGLER_END, event)))
            else:
                action = _EVENT_KINDS[type(event)]
                keyed.append((event.time, index, 0, FaultInstant(event.time, action, event)))
        keyed.sort(key=lambda entry: entry[:3])
        return tuple(instant for _, _, _, instant in keyed)

    def machine_ids(self) -> tuple[str, ...]:
        """Every machine id the plan references (crash/leave/straggler)."""
        ids = []
        for event in self.events:
            machine = getattr(event, "machine", None)
            if machine is not None and machine not in ids:
                ids.append(machine)
        return tuple(ids)

    @property
    def num_joins(self) -> int:
        return sum(1 for event in self.events if isinstance(event, MachineJoin))

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready spec; round-trips through :meth:`from_dict` exactly."""
        events = []
        for event in self.events:
            entry: dict = {"kind": _EVENT_KINDS[type(event)], "time": event.time}
            if isinstance(event, MachineJoin):
                entry["machine_name"] = event.machine_name
            elif isinstance(event, JobPreempt):
                entry["job"] = event.job
            else:
                entry["machine"] = event.machine
                if isinstance(event, Straggler):
                    entry["factor"] = event.factor
                    entry["duration"] = event.duration
            events.append(entry)
        return {"max_retries": self.max_retries, "events": events}

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (exact round-trip)."""
        events: list[FaultEvent] = []
        for entry in data.get("events", ()):
            kind = entry.get("kind")
            cls = _KIND_TYPES.get(kind)
            if cls is None:
                raise ValueError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{', '.join(sorted(_KIND_TYPES))}"
                )
            fields = {key: value for key, value in entry.items() if key != "kind"}
            events.append(cls(**fields))
        return FaultPlan(
            events=tuple(events),
            max_retries=data.get("max_retries", DEFAULT_MAX_RETRIES),
        )


class FaultInjector:
    """The simulator-facing view of one :class:`FaultPlan`.

    Stateless across runs — all per-run accounting (attempts, requeues,
    straggle windows) lives inside the simulation — so one injector can
    drive any number of runs, policies and simulator paths and always
    reproduce the identical outcome.  An injector with an empty plan is
    free: the simulator pushes no fault events and behaves byte-
    identically to a run with no injector at all.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._timeline: tuple[FaultInstant, ...] | None = None

    def __bool__(self) -> bool:
        return bool(self.plan)

    @property
    def max_retries(self) -> int:
        return self.plan.max_retries

    def timeline(self) -> tuple[FaultInstant, ...]:
        if self._timeline is None:
            self._timeline = self.plan.timeline()
        return self._timeline

    def validate_for(self, num_machines: int) -> None:
        """Fail fast when the plan targets machine ids the fleet can never
        have (initial machines plus joins, in ``m0, m1, ...`` order)."""
        known = {f"m{i}" for i in range(num_machines + self.plan.num_joins)}
        unknown = [mid for mid in self.plan.machine_ids() if mid not in known]
        if unknown:
            raise ValueError(
                f"fault plan targets unknown machine ids {', '.join(unknown)}; "
                f"a {num_machines}-machine fleet with {self.plan.num_joins} "
                f"join(s) only ever has ids m0..m{num_machines + self.plan.num_joins - 1}"
            )


def resolve_fault_plan(
    value: "FaultPlan | FaultInjector | dict | str | None",
) -> FaultPlan | None:
    """Coerce any user-facing fault spec into a :class:`FaultPlan`.

    Accepts a ready plan or injector, a :meth:`FaultPlan.to_dict` dict, a
    registered fault-spec name (:func:`repro.scenarios.get_fault_spec`),
    a JSON object string, or a path to a JSON file.  ``None`` passes
    through (no faults).
    """
    if value is None:
        return None
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, FaultInjector):
        return value.plan
    if isinstance(value, dict):
        return FaultPlan.from_dict(value)
    if isinstance(value, str):
        from repro.scenarios import FAULT_SPECS

        if value in FAULT_SPECS:
            return FaultPlan.from_dict(FAULT_SPECS[value])
        text = value
        if not text.lstrip().startswith("{") and os.path.exists(text):
            with open(text, "r", encoding="utf-8") as handle:
                text = handle.read()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"--fault-plan expects a registered fault-spec name "
                f"({', '.join(sorted(FAULT_SPECS)) or 'none registered'}), a JSON "
                f"object, or a JSON file path; got {value!r} ({exc})"
            ) from None
        if not isinstance(data, dict):
            raise ValueError(f"fault plan JSON must be an object, got {type(data).__name__}")
        return FaultPlan.from_dict(data)
    raise TypeError(f"cannot build a FaultPlan from {type(value).__name__}")


def generate_fault_plan(
    machine_ids: Sequence[str],
    *,
    horizon: float,
    seed: int = 0,
    crash_rate: float = 0.0,
    straggler_rate: float = 0.0,
    preempt_rate: float = 0.0,
    job_names: Sequence[str] = (),
    join_machines: Sequence[str] = (),
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> FaultPlan:
    """A seeded random plan: the CLI's ``--crash-rate`` / ``--straggler-rate``.

    ``crash_rate`` / ``straggler_rate`` are per-machine probabilities of
    (one) crash / straggler window over ``[0, horizon)``;
    ``preempt_rate`` is the per-job probability of one preemption.
    Straggler factors draw uniformly from ``[1.5, 3.5]`` and windows
    cover 10–40% of the horizon.  The same arguments always produce the
    identical plan.
    """
    if not math.isfinite(horizon) or horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon!r}")
    for name, rate in (
        ("crash_rate", crash_rate),
        ("straggler_rate", straggler_rate),
        ("preempt_rate", preempt_rate),
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
    rng = make_rng(seed)
    events: list[FaultEvent] = []
    for machine_id in machine_ids:
        if float(rng.random()) < crash_rate:
            events.append(MachineCrash(time=float(rng.uniform(0.0, horizon)), machine=machine_id))
    for machine_id in machine_ids:
        if float(rng.random()) < straggler_rate:
            events.append(
                Straggler(
                    time=float(rng.uniform(0.0, 0.8 * horizon)),
                    machine=machine_id,
                    factor=float(rng.uniform(1.5, 3.5)),
                    duration=float(rng.uniform(0.1 * horizon, 0.4 * horizon)),
                )
            )
    for job_name in job_names:
        if float(rng.random()) < preempt_rate:
            events.append(JobPreempt(time=float(rng.uniform(0.0, horizon)), job=job_name))
    for machine_name in join_machines:
        events.append(MachineJoin(time=float(rng.uniform(0.0, horizon)), machine_name=machine_name))
    return FaultPlan(events=tuple(events), max_retries=max_retries)
