"""Profiling utilities: per-operation timing reports and step timelines.

The paper builds its measurement infrastructure from TensorBoard traces
and VTune counter sampling; this package provides the equivalent views
over simulated execution traces — per-op-type aggregates (Table VI), a
chronological timeline, and formatted text reports.
"""

from repro.profiling.profiler import OpTypeStats, StepProfiler
from repro.profiling.timeline import Timeline, TimelineEntry
from repro.profiling.reports import format_op_type_report, format_timeline

__all__ = [
    "StepProfiler",
    "OpTypeStats",
    "Timeline",
    "TimelineEntry",
    "format_op_type_report",
    "format_timeline",
]
