"""Text reports over profiling data."""

from __future__ import annotations

from repro.profiling.profiler import StepProfiler
from repro.profiling.timeline import Timeline
from repro.utils.tables import TextTable
from repro.utils.units import format_time


def format_op_type_report(profiler: StepProfiler, *, top: int = 10, title: str | None = None) -> str:
    """Table of the most time-consuming operation types (Table VI style)."""
    table = TextTable(
        ["op type", "instances", "total", "avg", "avg threads"],
        title=title or "Most time-consuming operation types",
    )
    for stats in profiler.top_op_types(top):
        table.add_row(
            [
                stats.op_type,
                stats.instances,
                format_time(stats.total_time),
                format_time(stats.average_time),
                f"{stats.average_threads:.1f}",
            ]
        )
    return table.render()


def format_timeline(timeline: Timeline, *, limit: int = 40, title: str | None = None) -> str:
    """Chronological listing of the first ``limit`` operations of a step."""
    table = TextTable(
        ["start", "duration", "lane", "threads", "operation"],
        title=title or "Step timeline",
    )
    for entry in timeline.entries[:limit]:
        table.add_row(
            [
                format_time(entry.start),
                format_time(entry.duration),
                entry.lane,
                entry.threads,
                f"{entry.op_name} <{entry.op_type}>",
            ]
        )
    return table.render()
