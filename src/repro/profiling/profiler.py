"""Per-operation-type statistics over an execution trace."""

from __future__ import annotations

from dataclasses import dataclass

from repro.execsim.trace import ExecutionTrace


@dataclass(frozen=True)
class OpTypeStats:
    """Aggregate statistics of one operation type within a step."""

    op_type: str
    instances: int
    total_time: float
    average_time: float
    max_time: float
    average_threads: float

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("instances must be at least 1")


class StepProfiler:
    """Summarises an :class:`ExecutionTrace` the way the paper's tables do."""

    def __init__(self, trace: ExecutionTrace) -> None:
        self.trace = trace

    def op_type_stats(self) -> dict[str, OpTypeStats]:
        """Statistics keyed by operation type."""
        groups: dict[str, list] = {}
        for record in self.trace.records:
            groups.setdefault(record.op_type, []).append(record)
        stats: dict[str, OpTypeStats] = {}
        for op_type, records in groups.items():
            durations = [r.duration for r in records]
            stats[op_type] = OpTypeStats(
                op_type=op_type,
                instances=len(records),
                total_time=sum(durations),
                average_time=sum(durations) / len(durations),
                max_time=max(durations),
                average_threads=sum(r.threads for r in records) / len(records),
            )
        return stats

    def top_op_types(self, n: int = 5) -> list[OpTypeStats]:
        """The ``n`` most time-consuming operation types (Table VI's rows)."""
        if n < 1:
            raise ValueError("n must be at least 1")
        stats = self.op_type_stats()
        return sorted(stats.values(), key=lambda s: s.total_time, reverse=True)[:n]

    def total_time_of(self, op_type: str) -> float:
        """Total time of an operation type (0.0 when absent)."""
        stats = self.op_type_stats().get(op_type)
        return stats.total_time if stats is not None else 0.0

    def step_time(self) -> float:
        return self.trace.makespan
