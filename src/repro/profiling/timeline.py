"""Chronological view of a simulated step (a TensorBoard-trace equivalent)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.execsim.trace import ExecutionTrace


@dataclass(frozen=True)
class TimelineEntry:
    """One operation execution placed on the step timeline."""

    op_name: str
    op_type: str
    start: float
    end: float
    threads: int
    lane: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Assigns concurrent operations to display lanes (like a trace viewer)."""

    def __init__(self, trace: ExecutionTrace) -> None:
        self.trace = trace
        self.entries = self._build()

    def _build(self) -> list[TimelineEntry]:
        entries: list[TimelineEntry] = []
        lane_free_at: list[float] = []
        for record in sorted(self.trace.records, key=lambda r: (r.start_time, r.op_name)):
            lane = None
            for index, free_at in enumerate(lane_free_at):
                if record.start_time >= free_at - 1e-12:
                    lane = index
                    break
            if lane is None:
                lane = len(lane_free_at)
                lane_free_at.append(0.0)
            lane_free_at[lane] = record.finish_time
            entries.append(
                TimelineEntry(
                    op_name=record.op_name,
                    op_type=record.op_type,
                    start=record.start_time,
                    end=record.finish_time,
                    threads=record.threads,
                    lane=lane,
                )
            )
        return entries

    @property
    def num_lanes(self) -> int:
        """Maximum number of concurrently displayed operations."""
        if not self.entries:
            return 0
        return max(e.lane for e in self.entries) + 1

    def between(self, start: float, end: float) -> list[TimelineEntry]:
        """Entries overlapping the window [start, end)."""
        if end < start:
            raise ValueError("end must not precede start")
        return [e for e in self.entries if e.end > start and e.start < end]

    def concurrency_at(self, time: float) -> int:
        """Number of operations running at ``time``."""
        return sum(1 for e in self.entries if e.start <= time < e.end)
