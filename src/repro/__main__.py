"""``python -m repro`` — the package-level command line.

One subsystem today: ``python -m repro report ...`` drives the run
store (:mod:`repro.store.cli`).  The experiments CLI stays at
``python -m repro.experiments``.
"""

from __future__ import annotations

import sys

_USAGE = """usage: python -m repro <command> ...

commands:
  report   inspect, diff and replay stored runs (see: python -m repro report -h)
"""


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "report":
        from repro.store.cli import main as report_main

        return report_main(rest)
    print(f"unknown command {command!r}\n\n{_USAGE}", file=sys.stderr, end="")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
