"""``python -m repro`` — the package-level command line.

Two subsystems today: ``python -m repro report ...`` drives the run
store (:mod:`repro.store.cli`) and ``python -m repro resume <run_id>``
restarts an interrupted checkpointed fleet run
(:mod:`repro.resilience.cli`).  The experiments CLI stays at
``python -m repro.experiments``.
"""

from __future__ import annotations

import sys

_USAGE = """usage: python -m repro <command> ...

commands:
  report   inspect, diff, verify and replay stored runs (see: python -m repro report -h)
  resume   resume an interrupted checkpointed fleet run (see: python -m repro resume -h)
"""


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "report":
        from repro.store.cli import main as report_main

        return report_main(rest)
    if command == "resume":
        from repro.resilience.cli import main as resume_main

        return resume_main(rest)
    print(f"unknown command {command!r}\n\n{_USAGE}", file=sys.stderr, end="")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
