"""Thread affinity (tile placement) and core allocation.

Two concerns live here:

* :class:`ThreadPlacement` — how the threads of a *single* operation are
  laid out over tiles.  The paper evaluates two layouts: *cache sharing*
  (consecutive thread ids pinned to the same tile, two threads per tile)
  and *no cache sharing* (one thread per tile).  The 68 prediction cases
  of Section III-B are exactly: 1..34 threads spread one-per-tile, and
  2, 4, ..., 68 threads packed two-per-tile.
* :class:`CoreAllocator` — which physical cores each *co-running*
  operation owns (Strategy 3 partitions the chip between operations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.hardware.topology import CoreTopology


class AffinityMode(enum.Enum):
    """Thread-to-tile layout of a single operation."""

    #: One thread per tile: threads never share a last-level cache.
    SPREAD = "spread"
    #: Two threads (consecutive ids) per tile: siblings share the tile L2.
    SHARED = "shared"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ThreadPlacement:
    """Placement of ``num_threads`` threads of one operation.

    ``tiles_used`` is the number of distinct tiles hosting at least one
    thread; ``threads_per_tile`` is the (maximum) number of sibling
    threads on a tile.
    """

    num_threads: int
    mode: AffinityMode
    tiles_used: int
    threads_per_tile: int
    cores_used: int

    @property
    def siblings_share_tile(self) -> bool:
        return self.threads_per_tile > 1

    @staticmethod
    def plan(num_threads: int, mode: AffinityMode, topology: CoreTopology) -> "ThreadPlacement":
        """Compute the placement of ``num_threads`` under ``mode``.

        Raises ``ValueError`` when the placement is infeasible (e.g. more
        spread threads than tiles, or more shared threads than cores).
        """
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        if mode is AffinityMode.SPREAD:
            if num_threads > topology.num_tiles:
                raise ValueError(
                    f"spread placement of {num_threads} threads exceeds "
                    f"{topology.num_tiles} tiles"
                )
            return ThreadPlacement(
                num_threads=num_threads,
                mode=mode,
                tiles_used=num_threads,
                threads_per_tile=1,
                cores_used=num_threads,
            )
        if num_threads > topology.num_cores:
            raise ValueError(
                f"shared placement of {num_threads} threads exceeds "
                f"{topology.num_cores} cores"
            )
        per_tile = min(num_threads, topology.cores_per_tile)
        tiles = -(-num_threads // topology.cores_per_tile)  # ceil division
        return ThreadPlacement(
            num_threads=num_threads,
            mode=mode,
            tiles_used=tiles,
            threads_per_tile=per_tile,
            cores_used=num_threads,
        )

    @staticmethod
    def feasible_thread_counts(mode: AffinityMode, topology: CoreTopology) -> tuple[int, ...]:
        """Thread counts the paper's performance model considers for ``mode``.

        SPREAD: 1..num_tiles.  SHARED: tile-filling counts — multiples of
        ``cores_per_tile`` up to ``num_cores`` (on KNL's two-core tiles
        these are the even counts 2..68; counts that leave a tile
        imbalanced are excluded, as in the paper).  Machines with private
        per-core caches (``cores_per_tile == 1``) degenerate to every
        count 1..num_cores.
        """
        if mode is AffinityMode.SPREAD:
            return tuple(range(1, topology.num_tiles + 1))
        step = topology.cores_per_tile
        return tuple(range(step, topology.num_cores + 1, step))


def prediction_cases(topology: CoreTopology) -> tuple[tuple[int, AffinityMode], ...]:
    """The full set of (threads, affinity) prediction cases of Section III-B.

    On KNL this yields 68 cases: 34 spread + 34 shared.
    """
    cases: list[tuple[int, AffinityMode]] = []
    for count in ThreadPlacement.feasible_thread_counts(AffinityMode.SPREAD, topology):
        cases.append((count, AffinityMode.SPREAD))
    for count in ThreadPlacement.feasible_thread_counts(AffinityMode.SHARED, topology):
        cases.append((count, AffinityMode.SHARED))
    return tuple(cases)


@dataclass(frozen=True)
class CoreAllocation:
    """A set of physical cores granted to one running operation."""

    core_ids: tuple[int, ...]
    #: Hardware-thread slot on each core (0 = primary, 1.. = hyper-thread).
    smt_slot: int = 0

    def __post_init__(self) -> None:
        if len(set(self.core_ids)) != len(self.core_ids):
            raise ValueError("core_ids must be unique")
        if self.smt_slot < 0:
            raise ValueError("smt_slot must be non-negative")

    @property
    def num_cores(self) -> int:
        return len(self.core_ids)

    def tiles(self, topology: CoreTopology) -> set[int]:
        return {topology.tile_of_core(c) for c in self.core_ids}


class CoreAllocator:
    """Tracks which physical cores are free and grants tile-aware allocations.

    The allocator prefers granting whole tiles (so that an operation's
    sibling threads can share a tile L2) and falls back to stray cores.
    Hyper-thread slots are tracked separately: Strategy 4 places small
    operations on the secondary SMT slot of cores whose primary slot is
    busy.
    """

    def __init__(self, topology: CoreTopology) -> None:
        self.topology = topology
        self._free_primary: set[int] = set(range(topology.num_cores))
        #: Whether the cores offer a secondary hardware thread at all.
        #: Without SMT (e.g. the zoo's ARM server shape) no hyper-thread
        #: slot ever becomes available, and Strategy 4 naturally idles.
        self._smt_capable: bool = topology.smt_per_core >= 2
        #: Cores whose primary slot is busy but secondary slot is free.
        self._free_secondary: set[int] = set()
        #: Tile -> its core ids, precomputed (allocation is a hot path).
        self._tile_cores: tuple[tuple[int, ...], ...] = tuple(
            topology.cores_of_tile(tile) for tile in range(topology.num_tiles)
        )
        #: Per-tile count of free primary slots, kept in sync with
        #: ``_free_primary`` so "is this tile fully free?" is O(1).
        self._free_per_tile: list[int] = [topology.cores_per_tile] * topology.num_tiles
        self._cores_per_tile = topology.cores_per_tile
        self._all_cores: tuple[int, ...] = tuple(range(topology.num_cores))

    # -- primary-slot allocation -------------------------------------------------

    @property
    def free_cores(self) -> int:
        """Number of cores with a free primary slot."""
        return len(self._free_primary)

    @property
    def free_hyperthread_cores(self) -> int:
        """Number of busy cores with a free secondary SMT slot."""
        return len(self._free_secondary)

    def allocate(self, num_cores: int) -> CoreAllocation:
        """Allocate ``num_cores`` primary slots, preferring whole tiles."""
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if num_cores > len(self._free_primary):
            raise RuntimeError(
                f"requested {num_cores} cores but only {len(self._free_primary)} free"
            )
        # Whole-chip request on an idle chip (every serial policy's launch).
        if num_cores == self.topology.num_cores:
            allocation = CoreAllocation(core_ids=self._all_cores)
            self._free_primary.clear()
            self._free_per_tile = [0] * self.topology.num_tiles
            if self._smt_capable:
                self._free_secondary = set(self._all_cores)
            return allocation
        chosen: list[int] = []
        # First take fully-free tiles.
        free_per_tile = self._free_per_tile
        cores_per_tile = self._cores_per_tile
        for tile, cores in enumerate(self._tile_cores):
            if len(chosen) >= num_cores:
                break
            if free_per_tile[tile] == cores_per_tile:
                take = min(len(cores), num_cores - len(chosen))
                chosen.extend(cores[:take])
        # Then stray cores.
        if len(chosen) < num_cores:
            taken = set(chosen)
            for core in sorted(self._free_primary):
                if core in taken:
                    continue
                chosen.append(core)
                if len(chosen) >= num_cores:
                    break
        allocation = CoreAllocation(core_ids=tuple(sorted(chosen)))
        self._mark_busy(allocation)
        return allocation

    def allocate_hyperthreads(self, num_cores: int) -> CoreAllocation:
        """Allocate ``num_cores`` secondary SMT slots on busy cores."""
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if num_cores > len(self._free_secondary):
            raise RuntimeError(
                f"requested {num_cores} hyper-thread slots but only "
                f"{len(self._free_secondary)} available"
            )
        chosen = sorted(self._free_secondary)[:num_cores]
        for core in chosen:
            self._free_secondary.discard(core)
        return CoreAllocation(core_ids=tuple(chosen), smt_slot=1)

    def release(self, allocation: CoreAllocation) -> None:
        """Return an allocation's slots to the free pools."""
        if allocation.smt_slot == 0:
            core_ids = allocation.core_ids
            free_primary = self._free_primary
            if not free_primary.isdisjoint(core_ids):
                core = next(c for c in core_ids if c in free_primary)
                raise RuntimeError(f"core {core} released twice")
            free_primary.update(core_ids)
            free_per_tile = self._free_per_tile
            cores_per_tile = self._cores_per_tile
            for core in core_ids:
                free_per_tile[core // cores_per_tile] += 1
            # A core whose primary slot is free no longer offers a
            # meaningful "hyper-thread only" slot.
            self._free_secondary.difference_update(core_ids)
        else:
            # Cores whose primary owner already finished offer no slot.
            if self._smt_capable:
                self._free_secondary.update(
                    c for c in allocation.core_ids if c not in self._free_primary
                )

    def _mark_busy(self, allocation: CoreAllocation) -> None:
        core_ids = allocation.core_ids
        free_per_tile = self._free_per_tile
        cores_per_tile = self._cores_per_tile
        # allocate() only picks free cores, so all of them leave the pool.
        self._free_primary.difference_update(core_ids)
        for core in core_ids:
            free_per_tile[core // cores_per_tile] -= 1
        if self._smt_capable:
            self._free_secondary.update(core_ids)

    def reserve_all(self) -> CoreAllocation:
        """Allocate every free primary slot (used by core-filling operations)."""
        return self.allocate(len(self._free_primary))

    def snapshot(self) -> dict[str, int]:
        """Debug view of the allocator state."""
        return {
            "free_primary": len(self._free_primary),
            "free_secondary": len(self._free_secondary),
        }
