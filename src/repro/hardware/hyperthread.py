"""Simultaneous multithreading (hyper-threading) throughput model.

KNL cores offer 4 hardware threads.  Running a second thread on a core
does not double throughput; it typically adds 20-40% for memory-bound
code and very little for compute-bound code.  The paper's Strategy 4
exploits this by packing *small* operations onto the hyper-threads of
cores already running a big, core-filling operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SmtModel:
    """Throughput of a physical core as a function of resident threads.

    ``aggregate_throughput[k]`` is the total instruction throughput of a
    core running ``k`` hardware threads, normalised to a single thread.
    """

    aggregate_throughput: tuple[float, ...] = (0.0, 1.0, 1.06, 1.10, 1.12)
    #: Extra efficiency SMT gains for memory-bound work (latency hiding).
    #: A KNL core's VPUs are saturated by one thread of a dense kernel, so
    #: the compute-bound aggregate barely exceeds 1.0; memory-bound code
    #: benefits more because the second thread hides miss latency.
    memory_bound_bonus: float = 0.30

    def __post_init__(self) -> None:
        if len(self.aggregate_throughput) < 2:
            raise ValueError("need throughput for at least 0 and 1 threads")
        if self.aggregate_throughput[0] != 0.0:
            raise ValueError("throughput with zero threads must be zero")
        if self.aggregate_throughput[1] != 1.0:
            raise ValueError("throughput is normalised to one thread")
        prev = 0.0
        for value in self.aggregate_throughput:
            if value < prev:
                raise ValueError("aggregate throughput must be non-decreasing")
            prev = value

    @property
    def max_threads_per_core(self) -> int:
        return len(self.aggregate_throughput) - 1

    def core_throughput(self, threads_on_core: int, *, memory_bound: float = 0.0) -> float:
        """Total throughput of a core with ``threads_on_core`` threads.

        ``memory_bound`` in [0, 1] increases the SMT benefit (latency
        hiding helps memory-bound code more).
        """
        if threads_on_core < 0:
            raise ValueError("threads_on_core must be non-negative")
        if not (0.0 <= memory_bound <= 1.0):
            raise ValueError("memory_bound must lie in [0, 1]")
        k = min(threads_on_core, self.max_threads_per_core)
        base = self.aggregate_throughput[k]
        if k >= 2:
            base = base + self.memory_bound_bonus * memory_bound * (k - 1) / (
                self.max_threads_per_core - 1
            )
        return float(base)

    def per_thread_throughput(self, threads_on_core: int, *, memory_bound: float = 0.0) -> float:
        """Throughput of each thread when ``threads_on_core`` share the core."""
        if threads_on_core == 0:
            return 0.0
        return self.core_throughput(threads_on_core, memory_bound=memory_bound) / threads_on_core

    def corun_share(
        self,
        own_threads: int,
        other_threads: int,
        *,
        memory_bound: float = 0.0,
    ) -> float:
        """Throughput share of an operation that placed ``own_threads`` hardware
        threads on a core whose remaining SMT slots run ``other_threads``
        threads of other operations (Strategy 4 packing).

        Returns the fraction of a dedicated core the operation effectively
        receives.
        """
        if own_threads < 0 or other_threads < 0:
            raise ValueError("thread counts must be non-negative")
        if own_threads == 0:
            return 0.0
        total = own_threads + other_threads
        per_thread = self.per_thread_throughput(total, memory_bound=memory_bound)
        return float(own_threads * per_thread)
