"""Synthetic hardware performance counters.

The paper's first performance model feeds counter events (collected with
VTune during a few profiling steps) into regression models.  Its key
negative finding is that counter readings for *short* operations are too
noisy to predict execution time under a different thread count, so the
regressors mispredict.

This module reproduces that behaviour: counter values are derived
analytically from an operation's execution characteristics and then
perturbed with multiplicative noise whose magnitude grows as the sampled
duration shrinks (short runs ~ few sampling quanta ~ large relative
error).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.utils.seeding import make_rng


class CounterEvent(enum.Enum):
    """The 26 performance events collectible on the simulated machine."""

    CPU_CYCLES = "cpu_cycles"
    REF_CYCLES = "ref_cycles"
    INSTRUCTIONS = "instructions"
    UOPS_ISSUED = "uops_issued"
    UOPS_RETIRED = "uops_retired"
    L1_HITS = "l1_hits"
    L1_MISSES = "l1_misses"
    L2_HITS = "l2_hits"
    L2_MISSES = "l2_misses"
    LLC_ACCESSES = "llc_accesses"
    LLC_MISSES = "llc_misses"
    LOADS = "loads"
    STORES = "stores"
    BRANCHES = "branches"
    CONDITIONAL_BRANCHES = "conditional_branches"
    BRANCH_MISSES = "branch_misses"
    STALL_CYCLES_MEM = "stall_cycles_mem"
    STALL_CYCLES_FRONTEND = "stall_cycles_frontend"
    DTLB_MISSES = "dtlb_misses"
    ITLB_MISSES = "itlb_misses"
    HW_PREFETCHES = "hw_prefetches"
    FP_SCALAR = "fp_scalar"
    FP_VECTOR = "fp_vector"
    OFFCORE_REQUESTS = "offcore_requests"
    CONTEXT_SWITCHES = "context_switches"
    PAGE_FAULTS = "page_faults"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: The four features the paper selects with a decision-tree estimator.
SELECTED_FEATURES: tuple[CounterEvent, ...] = (
    CounterEvent.CPU_CYCLES,
    CounterEvent.LLC_MISSES,
    CounterEvent.LLC_ACCESSES,
    CounterEvent.L1_HITS,
)

#: How many counter events the PMU can record simultaneously; collecting
#: all 26 therefore needs several profiling steps (the paper mentions at
#: least four).
EVENTS_PER_GROUP: int = 8


@dataclass(frozen=True)
class CounterSample:
    """One counter measurement of one operation execution."""

    values: Mapping[CounterEvent, float]
    duration: float
    threads: int

    def __getitem__(self, event: CounterEvent) -> float:
        return float(self.values[event])

    def normalized(self) -> dict[CounterEvent, float]:
        """Counter values divided by the instruction count.

        The paper normalises features by total instructions so the model
        transfers across operations of different sizes.
        """
        instructions = max(1.0, float(self.values[CounterEvent.INSTRUCTIONS]))
        return {event: float(v) / instructions for event, v in self.values.items()}

    def as_feature_vector(self, events: tuple[CounterEvent, ...] = SELECTED_FEATURES) -> np.ndarray:
        """Normalised feature vector in the order of ``events``."""
        norm = self.normalized()
        return np.array([norm[e] for e in events], dtype=float)


@dataclass(frozen=True)
class CounterSimulator:
    """Generates counter readings from analytic execution characteristics.

    Parameters
    ----------
    sampling_quantum:
        Effective measurement granularity in seconds.  Operations whose
        duration is only a few quanta receive noisy readings; this is the
        mechanism behind the paper's observation that counter-based
        features are unreliable for short operations.
    base_noise:
        Relative noise floor applied even to long measurements.
    """

    sampling_quantum: float = 250e-6
    base_noise: float = 0.02
    cache_line: int = 64

    def relative_noise(self, duration: float) -> float:
        """Relative standard deviation of a measurement of ``duration``."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        quanta = duration / self.sampling_quantum
        return float(self.base_noise + 0.5 / np.sqrt(max(quanta, 1e-3)))

    def collect(
        self,
        *,
        flops: float,
        bytes_from_memory: float,
        bytes_total: float,
        duration: float,
        threads: int,
        frequency_hz: float,
        branchiness: float = 0.08,
        seed: int | None = 0,
    ) -> CounterSample:
        """Produce a noisy counter sample for one operation execution.

        Parameters
        ----------
        flops:
            Floating point operations executed.
        bytes_from_memory:
            Bytes that actually travelled from main memory (after cache
            reuse) — drives LLC misses.
        bytes_total:
            Bytes touched by the kernel (drives loads/stores/L1 activity).
        duration, threads, frequency_hz:
            Execution time, thread count and clock used to derive cycles.
        branchiness:
            Branches per instruction for this kernel.
        """
        if flops < 0 or bytes_from_memory < 0 or bytes_total < 0:
            raise ValueError("work quantities must be non-negative")
        if threads <= 0:
            raise ValueError("threads must be positive")
        rng = make_rng(seed)

        cycles = duration * frequency_hz * threads
        # Roughly one vector FMA retires 32 flops; add address arithmetic,
        # loads/stores and loop control on top.
        fp_vector = flops / 32.0
        loads = bytes_total / 8.0 * 0.6
        stores = bytes_total / 8.0 * 0.25
        instructions = fp_vector * 1.7 + loads + stores
        instructions = max(instructions, 1.0)
        branches = instructions * branchiness
        l1_accesses = loads + stores
        llc_accesses = bytes_total / self.cache_line
        llc_misses = bytes_from_memory / self.cache_line
        l1_miss = min(l1_accesses, llc_accesses)
        l1_hits = max(l1_accesses - l1_miss, 0.0)
        stall_mem = llc_misses * 150.0  # ~150 cycles per memory access
        exact: dict[CounterEvent, float] = {
            CounterEvent.CPU_CYCLES: cycles,
            CounterEvent.REF_CYCLES: cycles * 0.98,
            CounterEvent.INSTRUCTIONS: instructions,
            CounterEvent.UOPS_ISSUED: instructions * 1.25,
            CounterEvent.UOPS_RETIRED: instructions * 1.18,
            CounterEvent.L1_HITS: l1_hits,
            CounterEvent.L1_MISSES: l1_miss,
            CounterEvent.L2_HITS: max(llc_accesses - llc_misses, 0.0),
            CounterEvent.L2_MISSES: llc_misses,
            CounterEvent.LLC_ACCESSES: llc_accesses,
            CounterEvent.LLC_MISSES: llc_misses,
            CounterEvent.LOADS: loads,
            CounterEvent.STORES: stores,
            CounterEvent.BRANCHES: branches,
            CounterEvent.CONDITIONAL_BRANCHES: branches * 0.85,
            CounterEvent.BRANCH_MISSES: branches * 0.015,
            CounterEvent.STALL_CYCLES_MEM: min(stall_mem, cycles * 0.9),
            CounterEvent.STALL_CYCLES_FRONTEND: cycles * 0.05,
            CounterEvent.DTLB_MISSES: bytes_total / 4096.0 * 0.02,
            CounterEvent.ITLB_MISSES: instructions * 1e-6,
            CounterEvent.HW_PREFETCHES: llc_accesses * 0.4,
            CounterEvent.FP_SCALAR: flops * 0.02,
            CounterEvent.FP_VECTOR: fp_vector,
            CounterEvent.OFFCORE_REQUESTS: llc_misses * 1.05,
            CounterEvent.CONTEXT_SWITCHES: float(threads),
            CounterEvent.PAGE_FAULTS: bytes_total / (2 * 1024 * 1024) * 0.01,
        }
        sigma = self.relative_noise(duration)
        noisy = {
            event: max(0.0, value * float(rng.lognormal(mean=0.0, sigma=sigma)))
            for event, value in exact.items()
        }
        return CounterSample(values=noisy, duration=duration, threads=threads)

    def profiling_steps_required(self, num_events: int) -> int:
        """How many profiling steps are needed to collect ``num_events``
        (the PMU multiplexes only ``EVENTS_PER_GROUP`` events at a time)."""
        if num_events <= 0:
            raise ValueError("num_events must be positive")
        return -(-num_events // EVENTS_PER_GROUP)
