"""Simulated hardware substrates.

The paper's runtime makes decisions on an Intel Knights Landing (KNL)
manycore node (68 cores, 34 tiles sharing a 1 MB L2 each, 4 SMT threads
per core, MCDRAM in cache mode) and, in its preliminary GPU study, on an
Nvidia P100.  We have neither, so this subpackage provides analytic
machine models exposing exactly the properties those decisions depend on:

* core/tile topology and thread placement (:mod:`repro.hardware.topology`,
  :mod:`repro.hardware.affinity`),
* cache reuse as a function of per-tile working set
  (:mod:`repro.hardware.cache`),
* memory bandwidth and its saturation under many cores
  (:mod:`repro.hardware.memory`),
* simultaneous multithreading throughput (:mod:`repro.hardware.hyperthread`),
* hardware performance counters with realistic measurement noise
  (:mod:`repro.hardware.counters`),
* a P100-like GPU occupancy model (:mod:`repro.hardware.gpu`).
"""

from repro.hardware.topology import CoreTopology, Machine
from repro.hardware.memory import MemoryHierarchy
from repro.hardware.cache import CacheModel
from repro.hardware.hyperthread import SmtModel
from repro.hardware.affinity import (
    AffinityMode,
    ThreadPlacement,
    CoreAllocator,
    CoreAllocation,
)
from repro.hardware.knl import knl_machine, small_knl_machine
from repro.hardware.counters import CounterEvent, CounterSimulator, CounterSample
from repro.hardware.gpu import GpuSpec, p100_gpu
from repro.hardware.zoo import (
    MACHINE_ZOO,
    available_machines,
    describe_zoo,
    get_machine,
    make_machine,
    register_machine,
    resolve_machine,
    zoo_machines,
)

__all__ = [
    "MACHINE_ZOO",
    "available_machines",
    "describe_zoo",
    "get_machine",
    "make_machine",
    "register_machine",
    "resolve_machine",
    "zoo_machines",
    "CoreTopology",
    "Machine",
    "MemoryHierarchy",
    "CacheModel",
    "SmtModel",
    "AffinityMode",
    "ThreadPlacement",
    "CoreAllocator",
    "CoreAllocation",
    "knl_machine",
    "small_knl_machine",
    "CounterEvent",
    "CounterSimulator",
    "CounterSample",
    "GpuSpec",
    "p100_gpu",
]
