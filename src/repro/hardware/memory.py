"""Memory bandwidth model.

KNL in *cache mode* exposes the 16 GB MCDRAM as a memory-side cache in
front of DDR4.  The paper notes that all data sets fit in MCDRAM, so the
relevant bandwidth is the MCDRAM stream bandwidth (~400-450 GB/s), which a
single core cannot saturate: per-core achievable bandwidth is roughly
12-14 GB/s, so bandwidth scales with active cores until the chip-level
ceiling is reached.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryHierarchy:
    """Bandwidth/capacity description of the memory system.

    Attributes
    ----------
    fast_bandwidth:
        Chip-level bandwidth of the fast memory (MCDRAM in cache mode),
        bytes/second.
    ddr_bandwidth:
        DDR bandwidth, bytes/second (unused while the working set fits in
        fast memory, which holds for all paper workloads).
    fast_capacity:
        Capacity of the fast memory in bytes.
    per_core_bandwidth:
        Bandwidth achievable by a single core's outstanding misses,
        bytes/second.
    """

    fast_bandwidth: float = 420e9
    ddr_bandwidth: float = 90e9
    fast_capacity: int = 16 * 1024**3
    per_core_bandwidth: float = 13e9

    def __post_init__(self) -> None:
        if min(self.fast_bandwidth, self.ddr_bandwidth, self.per_core_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.fast_capacity <= 0:
            raise ValueError("fast_capacity must be positive")

    def achievable_bandwidth(self, active_cores: int) -> float:
        """Bandwidth available to ``active_cores`` concurrently streaming cores.

        Scales linearly with the number of cores issuing misses until the
        chip-level ceiling is hit.
        """
        if active_cores < 0:
            raise ValueError("active_cores must be non-negative")
        if active_cores == 0:
            return 0.0
        return min(self.fast_bandwidth, active_cores * self.per_core_bandwidth)

    def contended_bandwidth(self, active_cores: int, total_active_cores: int) -> float:
        """Bandwidth share of one operation using ``active_cores`` while
        ``total_active_cores`` cores are streaming chip-wide.

        Each operation can at most use what its own cores can pull
        (``active_cores * per_core_bandwidth``); if the sum of all demands
        exceeds the chip ceiling the ceiling is divided proportionally to
        core counts.
        """
        if active_cores < 0 or total_active_cores < 0:
            raise ValueError("core counts must be non-negative")
        if active_cores == 0:
            return 0.0
        total_active_cores = max(total_active_cores, active_cores)
        own_limit = active_cores * self.per_core_bandwidth
        total_demand = total_active_cores * self.per_core_bandwidth
        if total_demand <= self.fast_bandwidth:
            return own_limit
        return self.fast_bandwidth * (active_cores / total_active_cores)
