"""Core/tile topology and the top-level :class:`Machine` description.

The topology captures the structural facts the scheduler cares about:
how many physical cores exist, how they are grouped into tiles that share
a last-level cache, and how many hardware (SMT) threads each core offers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cache import CacheModel
from repro.hardware.gpu import GpuSpec
from repro.hardware.hyperthread import SmtModel
from repro.hardware.memory import MemoryHierarchy


@dataclass(frozen=True)
class CoreTopology:
    """Physical layout of a manycore processor.

    Attributes
    ----------
    num_cores:
        Number of physical cores (68 on KNL), summed over all sockets.
    cores_per_tile:
        Cores sharing one last-level cache slice (2 on KNL; 1 models
        private per-core L2 as on most Xeon/desktop parts).
    smt_per_core:
        Hardware threads per core (4 on KNL; the paper uses at most 2).
    num_sockets:
        NUMA sockets.  Tiles never straddle sockets, so ``num_cores``
        must divide evenly into ``num_sockets`` groups of whole tiles.
    frequency_hz:
        Core clock frequency.
    flops_per_cycle:
        Peak double-precision FLOPs per cycle per core.
    compute_efficiency:
        Fraction of peak a well-tuned dense kernel sustains (MKL-DNN on
        KNL sustains roughly a third of peak for the conv shapes used in
        the paper).
    """

    num_cores: int = 68
    cores_per_tile: int = 2
    smt_per_core: int = 4
    frequency_hz: float = 1.4e9
    flops_per_cycle: float = 32.0
    compute_efficiency: float = 0.35
    num_sockets: int = 1

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("num_cores must be positive")
        if self.cores_per_tile <= 0:
            raise ValueError("cores_per_tile must be positive")
        if self.num_cores % self.cores_per_tile != 0:
            raise ValueError("num_cores must be divisible by cores_per_tile")
        if self.smt_per_core < 1:
            raise ValueError("smt_per_core must be at least 1")
        if not (0 < self.compute_efficiency <= 1):
            raise ValueError("compute_efficiency must lie in (0, 1]")
        if self.num_sockets < 1:
            raise ValueError("num_sockets must be at least 1")
        if self.num_cores % self.num_sockets != 0:
            raise ValueError("num_cores must be divisible by num_sockets")
        if (self.num_cores // self.num_sockets) % self.cores_per_tile != 0:
            raise ValueError("tiles must not straddle sockets")

    @property
    def num_tiles(self) -> int:
        """Number of tiles (last-level-cache domains)."""
        return self.num_cores // self.cores_per_tile

    @property
    def num_logical_cpus(self) -> int:
        """Total number of hardware threads."""
        return self.num_cores * self.smt_per_core

    @property
    def peak_flops_per_core(self) -> float:
        """Peak FLOP/s of a single core."""
        return self.frequency_hz * self.flops_per_cycle

    @property
    def effective_flops_per_core(self) -> float:
        """Sustained FLOP/s of a single core for tuned dense kernels."""
        return self.peak_flops_per_core * self.compute_efficiency

    def tile_of_core(self, core_id: int) -> int:
        """Tile index owning physical core ``core_id``."""
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core_id {core_id} out of range [0, {self.num_cores})")
        return core_id // self.cores_per_tile

    def cores_of_tile(self, tile_id: int) -> tuple[int, ...]:
        """Physical core ids belonging to ``tile_id``."""
        if not 0 <= tile_id < self.num_tiles:
            raise ValueError(f"tile_id {tile_id} out of range [0, {self.num_tiles})")
        start = tile_id * self.cores_per_tile
        return tuple(range(start, start + self.cores_per_tile))

    @property
    def cores_per_socket(self) -> int:
        """Physical cores on each NUMA socket."""
        return self.num_cores // self.num_sockets

    def socket_of_core(self, core_id: int) -> int:
        """Socket index owning physical core ``core_id``."""
        if not 0 <= core_id < self.num_cores:
            raise ValueError(f"core_id {core_id} out of range [0, {self.num_cores})")
        return core_id // self.cores_per_socket

    def cores_of_socket(self, socket_id: int) -> tuple[int, ...]:
        """Physical core ids belonging to ``socket_id``."""
        if not 0 <= socket_id < self.num_sockets:
            raise ValueError(
                f"socket_id {socket_id} out of range [0, {self.num_sockets})"
            )
        start = socket_id * self.cores_per_socket
        return tuple(range(start, start + self.cores_per_socket))


@dataclass(frozen=True)
class Machine:
    """A complete machine description used by the execution simulator."""

    name: str
    topology: CoreTopology
    memory: MemoryHierarchy
    cache: CacheModel
    smt: SmtModel = field(default_factory=SmtModel)
    #: Per-thread wake-up cost in seconds (OpenMP thread-pool fan-out).
    thread_spawn_cost: float = 0.2e-6
    #: Synchronisation (barrier) cost per log2(threads) step, seconds.
    sync_cost: float = 1.5e-6
    #: Fixed per-operation dispatch cost (kernel launch, allocator, runtime
    #: bookkeeping) paid regardless of the thread count, seconds.
    op_dispatch_cost: float = 12e-6
    #: Penalty (seconds) applied when an operation is launched with a thread
    #: count different from its previous launch (cache thrashing and thread
    #: pool resize, the effect Strategy 2 avoids).
    reconfiguration_cost: float = 150e-6
    #: Attached accelerator, when the machine has one (the GPU experiments
    #: use it instead of the default P100 when present).
    gpu: GpuSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("machine name must be non-empty")
        if not isinstance(self.topology, CoreTopology):
            raise TypeError("topology must be a CoreTopology")
        if not isinstance(self.memory, MemoryHierarchy):
            raise TypeError("memory must be a MemoryHierarchy")
        if not isinstance(self.cache, CacheModel):
            raise TypeError("cache must be a CacheModel")
        if not isinstance(self.smt, SmtModel):
            raise TypeError("smt must be an SmtModel")
        if self.gpu is not None and not isinstance(self.gpu, GpuSpec):
            raise TypeError("gpu must be a GpuSpec or None")
        # The SMT throughput curve must describe every hardware thread the
        # topology exposes, or the simulator would extrapolate beyond it.
        if self.smt.max_threads_per_core < self.topology.smt_per_core:
            raise ValueError(
                f"SmtModel describes {self.smt.max_threads_per_core} threads/core "
                f"but the topology exposes {self.topology.smt_per_core}"
            )
        # A single core must not out-pull the chip-level ceiling.
        if self.memory.per_core_bandwidth > self.memory.fast_bandwidth:
            raise ValueError("per_core_bandwidth exceeds the chip-level ceiling")
        if self.thread_spawn_cost < 0 or self.sync_cost < 0:
            raise ValueError("overhead costs must be non-negative")
        if self.op_dispatch_cost < 0:
            raise ValueError("op_dispatch_cost must be non-negative")
        if self.reconfiguration_cost < 0:
            raise ValueError("reconfiguration_cost must be non-negative")

    @property
    def num_cores(self) -> int:
        return self.topology.num_cores

    @property
    def num_tiles(self) -> int:
        return self.topology.num_tiles

    def describe(self) -> str:
        """Human readable one-line summary."""
        t = self.topology
        return (
            f"{self.name}: {t.num_cores} cores / {t.num_tiles} tiles, "
            f"{t.smt_per_core} SMT, {t.frequency_hz / 1e9:.2f} GHz, "
            f"L2 {self.cache.l2_size_per_tile // 1024} KiB per tile, "
            f"{self.memory.fast_bandwidth / 1e9:.0f} GB/s fast memory"
        )
