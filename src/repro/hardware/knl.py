"""Intel Knights Landing (Xeon Phi 7250) machine description.

Values follow the configuration used in the paper (Cori KNL nodes):
68 cores organised in 34 tiles, two cores per tile sharing 1 MB L2, four
hardware threads per core, 16 GB MCDRAM in cache mode.
"""

from __future__ import annotations

from repro.hardware.cache import CacheModel
from repro.hardware.hyperthread import SmtModel
from repro.hardware.memory import MemoryHierarchy
from repro.hardware.topology import CoreTopology, Machine


def knl_machine() -> Machine:
    """The Xeon Phi 7250 node the paper evaluates on."""
    topology = CoreTopology(
        num_cores=68,
        cores_per_tile=2,
        smt_per_core=4,
        frequency_hz=1.4e9,
        flops_per_cycle=32.0,
        compute_efficiency=0.35,
    )
    memory = MemoryHierarchy(
        fast_bandwidth=420e9,
        ddr_bandwidth=90e9,
        fast_capacity=16 * 1024**3,
        per_core_bandwidth=13e9,
    )
    cache = CacheModel(
        l1_size_per_core=32 * 1024,
        l2_size_per_tile=1024 * 1024,
        sibling_sharing_bonus=0.35,
        reuse_ceiling=0.85,
    )
    return Machine(
        name="Intel Xeon Phi 7250 (KNL, cache mode)",
        topology=topology,
        memory=memory,
        cache=cache,
        smt=SmtModel(),
    )


def small_knl_machine(num_cores: int = 8) -> Machine:
    """A scaled-down KNL-like machine for fast unit tests.

    Keeps the tile structure (two cores per tile) and relative parameters
    but with far fewer cores, so exhaustive sweeps stay cheap.
    """
    if num_cores < 2 or num_cores % 2 != 0:
        raise ValueError("small KNL machine needs an even core count >= 2")
    topology = CoreTopology(
        num_cores=num_cores,
        cores_per_tile=2,
        smt_per_core=4,
        frequency_hz=1.4e9,
        flops_per_cycle=32.0,
        compute_efficiency=0.35,
    )
    memory = MemoryHierarchy(
        fast_bandwidth=420e9 * num_cores / 68,
        ddr_bandwidth=90e9,
        fast_capacity=16 * 1024**3,
        per_core_bandwidth=13e9,
    )
    cache = CacheModel()
    return Machine(
        name=f"small-knl-{num_cores}",
        topology=topology,
        memory=memory,
        cache=cache,
        smt=SmtModel(),
    )
