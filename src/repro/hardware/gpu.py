"""P100-like GPU model for the paper's preliminary GPU study (Section VII).

The study needs only two responses:

* kernel execution time as a function of the launch configuration
  (threads per block, number of thread blocks) — Figure 5; and
* throughput of two kernels co-running in separate CUDA streams versus
  running them serially — Table VII.

Both are captured by a simple occupancy/roofline model of a Tesla P100.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Static description of the GPU."""

    name: str = "Nvidia Tesla P100"
    num_sms: int = 56
    cores_per_sm: int = 64
    max_threads_per_sm: int = 2048
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 32
    warp_size: int = 32
    frequency_hz: float = 1.3e9
    l2_size: int = 4 * 1024 * 1024
    memory_bandwidth: float = 732e9
    #: Sustained fraction of peak FLOP/s for tuned kernels.
    compute_efficiency: float = 0.45
    #: Fixed kernel launch latency in seconds.
    launch_latency: float = 6e-6

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM configuration must be positive")
        if self.max_threads_per_block <= 0 or self.warp_size <= 0:
            raise ValueError("thread limits must be positive")

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def peak_flops(self) -> float:
        # 2 FLOPs per core per cycle (FMA).
        return self.total_cores * self.frequency_hz * 2.0

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.compute_efficiency

    def occupancy(self, threads_per_block: int, num_blocks: int) -> float:
        """Fraction of the GPU's thread slots that the launch keeps busy.

        Captures the two first-order effects of Figure 5: too few threads
        per block (or too few blocks) underutilise SMs, while oversized
        launches gain nothing and pay slightly more scheduling overhead.
        """
        if threads_per_block <= 0 or num_blocks <= 0:
            raise ValueError("launch configuration must be positive")
        threads_per_block = min(threads_per_block, self.max_threads_per_block)
        # Round up to whole warps: a 48-thread block still occupies 2 warps.
        warps_per_block = -(-threads_per_block // self.warp_size)
        effective_threads_per_block = warps_per_block * self.warp_size
        blocks_per_sm = min(
            self.max_blocks_per_sm,
            max(1, self.max_threads_per_sm // effective_threads_per_block),
        )
        resident_blocks = min(num_blocks, blocks_per_sm * self.num_sms)
        resident_threads = resident_blocks * effective_threads_per_block
        max_resident = self.num_sms * self.max_threads_per_sm
        occ = resident_threads / max_resident
        # Having fewer blocks than SMs leaves SMs idle regardless of block size.
        sm_coverage = min(1.0, num_blocks / self.num_sms)
        return float(min(1.0, occ) * sm_coverage)

    def scheduling_overhead(self, threads_per_block: int, num_blocks: int) -> float:
        """Relative overhead of managing the launch (more blocks and very
        large blocks cost slightly more)."""
        if threads_per_block <= 0 or num_blocks <= 0:
            raise ValueError("launch configuration must be positive")
        block_cost = 1.0 + 2e-5 * num_blocks
        thread_cost = 1.0 + 1.5e-5 * max(0, threads_per_block - 256)
        return float(block_cost * thread_cost)


def p100_gpu() -> GpuSpec:
    """The Tesla P100 used in Section VII."""
    return GpuSpec()
