"""Tile-level cache reuse model.

Two cores on a KNL tile share a 1 MB L2.  How much of an operation's
memory traffic is served from that L2 depends on the per-tile working set
and on whether the two sibling threads work on adjacent loop iterations
(the "cache sharing" affinity of the paper, where threads with
consecutive ids are pinned to the same tile and reuse each other's data).
"""

from __future__ import annotations

from dataclasses import dataclass
import math


@dataclass(frozen=True)
class CacheModel:
    """Analytic L2 reuse model.

    Attributes
    ----------
    l1_size_per_core:
        L1 data cache per core, bytes.
    l2_size_per_tile:
        Shared L2 per tile, bytes (1 MiB on KNL).
    sibling_sharing_bonus:
        Fraction of a thread's working set that overlaps with its tile
        sibling when the "cache sharing" affinity is used (consecutive
        thread ids work on adjacent iterations of the parallel loop).
    reuse_ceiling:
        Maximum fraction of memory traffic that can be eliminated by L2
        reuse even when the working set fits entirely (cold misses and
        streaming stores always go to memory).
    """

    l1_size_per_core: int = 32 * 1024
    l2_size_per_tile: int = 1024 * 1024
    sibling_sharing_bonus: float = 0.35
    reuse_ceiling: float = 0.85

    def __post_init__(self) -> None:
        if self.l1_size_per_core <= 0 or self.l2_size_per_tile <= 0:
            raise ValueError("cache sizes must be positive")
        if not (0.0 <= self.sibling_sharing_bonus < 1.0):
            raise ValueError("sibling_sharing_bonus must lie in [0, 1)")
        if not (0.0 < self.reuse_ceiling <= 1.0):
            raise ValueError("reuse_ceiling must lie in (0, 1]")

    def fit_fraction(self, working_set_per_tile: float) -> float:
        """Fraction of the per-tile working set resident in the tile L2.

        Uses a smooth saturating curve instead of a hard cliff: real
        kernels blocked for cache degrade gracefully as the working set
        outgrows the L2.
        """
        if working_set_per_tile < 0:
            raise ValueError("working set must be non-negative")
        if working_set_per_tile == 0:
            return 1.0
        ratio = self.l2_size_per_tile / working_set_per_tile
        # ratio >= 1 -> fully resident, ratio -> 0 -> nothing resident.
        return float(min(1.0, ratio) ** 0.75)

    def reuse_fraction(
        self,
        working_set_per_tile: float,
        *,
        siblings_share_tile: bool,
        reuse_potential: float,
    ) -> float:
        """Fraction of memory traffic eliminated by the tile L2.

        Parameters
        ----------
        working_set_per_tile:
            Bytes actively touched by the threads on one tile.
        siblings_share_tile:
            True when two threads of the same operation are co-located on
            the tile (the paper's cache-sharing affinity).
        reuse_potential:
            Operation-specific temporal reuse in [0, 1]; high for blocked
            GEMM/conv kernels, low for streaming elementwise ops.
        """
        if not (0.0 <= reuse_potential <= 1.0):
            raise ValueError("reuse_potential must lie in [0, 1]")
        fit = self.fit_fraction(working_set_per_tile)
        reuse = reuse_potential * fit
        if siblings_share_tile:
            # Siblings touching adjacent iterations effectively shrink the
            # combined working set and convert some of each other's misses
            # into L2 hits.
            reuse = reuse + (1.0 - reuse) * self.sibling_sharing_bonus * fit
        return float(min(self.reuse_ceiling, reuse))

    def thrash_penalty(self, reconfigurations: int) -> float:
        """Multiplicative slowdown from repeatedly resizing thread teams.

        Each concurrency change flushes warm per-thread state; the penalty
        saturates (diminishing additional damage) with the number of
        changes between two executions of the same operation.
        """
        if reconfigurations < 0:
            raise ValueError("reconfigurations must be non-negative")
        if reconfigurations == 0:
            return 1.0
        return 1.0 + 0.06 * math.log2(1 + reconfigurations)
