"""The machine zoo: a parameterized factory and registry of hardware shapes.

The paper evaluates on exactly one machine — a 68-core Knights Landing
node (:func:`repro.hardware.knl.knl_machine`).  The interesting behaviour
of concurrency control, however, only shows once topologies vary: the
optimal intra-op parallelism, the value of cache-sharing affinity and the
profitability of co-running all shift with core counts, tile sizes,
hyper-threading and memory bandwidth.  This module provides

* :func:`make_machine` — a parameterized factory covering the shapes the
  simulator understands (multi-socket NUMA servers, hyper-threaded
  desktops, cloud VMs, SMT-less ARM servers, accelerator hosts), and
* a **registry** of named, ready-made machines (:data:`MACHINE_ZOO`)
  resolvable by :func:`get_machine`, with the paper's KNL as one entry.

Every experiment, the sweep engine and the CLI accept any of these by
name (``--machine``), and the scenario registry
(:mod:`repro.scenarios`) binds them to workloads.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.hardware.cache import CacheModel
from repro.hardware.gpu import GpuSpec, p100_gpu
from repro.hardware.hyperthread import SmtModel
from repro.hardware.knl import knl_machine, small_knl_machine
from repro.hardware.memory import MemoryHierarchy
from repro.hardware.topology import CoreTopology, Machine


def make_machine(
    name: str,
    *,
    num_cores: int,
    cores_per_tile: int = 1,
    smt_per_core: int = 2,
    num_sockets: int = 1,
    frequency_hz: float = 2.5e9,
    flops_per_cycle: float = 16.0,
    compute_efficiency: float = 0.5,
    fast_bandwidth: float = 100e9,
    ddr_bandwidth: float | None = None,
    fast_capacity: int = 64 * 1024**3,
    per_core_bandwidth: float = 12e9,
    l1_size_per_core: int = 32 * 1024,
    l2_size_per_tile: int = 1024 * 1024,
    sibling_sharing_bonus: float | None = None,
    reuse_ceiling: float = 0.85,
    smt_aggregate: tuple[float, ...] | None = None,
    smt_memory_bound_bonus: float = 0.30,
    thread_spawn_cost: float = 0.2e-6,
    sync_cost: float = 1.5e-6,
    op_dispatch_cost: float = 12e-6,
    reconfiguration_cost: float = 150e-6,
    gpu: GpuSpec | None = None,
) -> Machine:
    """Build a validated :class:`Machine` from first-order hardware facts.

    Defaults describe a generic contemporary server core; every component
    dataclass re-validates its own invariants, and
    :class:`Machine.__post_init__` checks the cross-component ones (SMT
    curve covering the topology's hardware threads, per-core bandwidth
    below the chip ceiling, tiles not straddling sockets).

    ``sibling_sharing_bonus`` defaults to 0 for private-cache machines
    (``cores_per_tile == 1`` — there is no sibling to share with) and to
    the KNL-calibrated 0.35 otherwise.  ``smt_aggregate`` defaults to a
    curve of the right length for ``smt_per_core``: the measured KNL curve
    truncated or extended, normalised as :class:`SmtModel` requires.
    """
    if sibling_sharing_bonus is None:
        sibling_sharing_bonus = 0.0 if cores_per_tile == 1 else 0.35
    if smt_aggregate is None:
        reference = [0.0, 1.0, 1.18, 1.24, 1.28]
        # Extend past the measured curve with diminishing gains so wide-SMT
        # parts (POWER-style SMT-8) get a valid non-decreasing default.
        while len(reference) < smt_per_core + 1:
            reference.append(reference[-1] + 0.02)
        smt_aggregate = tuple(reference[: smt_per_core + 1])
    topology = CoreTopology(
        num_cores=num_cores,
        cores_per_tile=cores_per_tile,
        smt_per_core=smt_per_core,
        frequency_hz=frequency_hz,
        flops_per_cycle=flops_per_cycle,
        compute_efficiency=compute_efficiency,
        num_sockets=num_sockets,
    )
    memory = MemoryHierarchy(
        fast_bandwidth=fast_bandwidth,
        ddr_bandwidth=ddr_bandwidth if ddr_bandwidth is not None else fast_bandwidth,
        fast_capacity=fast_capacity,
        per_core_bandwidth=per_core_bandwidth,
    )
    cache = CacheModel(
        l1_size_per_core=l1_size_per_core,
        l2_size_per_tile=l2_size_per_tile,
        sibling_sharing_bonus=sibling_sharing_bonus,
        reuse_ceiling=reuse_ceiling,
    )
    smt = SmtModel(
        aggregate_throughput=tuple(smt_aggregate),
        memory_bound_bonus=smt_memory_bound_bonus,
    )
    return Machine(
        name=name,
        topology=topology,
        memory=memory,
        cache=cache,
        smt=smt,
        thread_spawn_cost=thread_spawn_cost,
        sync_cost=sync_cost,
        op_dispatch_cost=op_dispatch_cost,
        reconfiguration_cost=reconfiguration_cost,
        gpu=gpu,
    )


# -- ready-made shapes --------------------------------------------------------------


def xeon_2s_56c() -> Machine:
    """Dual-socket Skylake-SP-like server: 2 x 28 cores, private 1 MB L2,
    2-way SMT, AVX-512."""
    return make_machine(
        "xeon-2s-56c",
        num_cores=56,
        num_sockets=2,
        cores_per_tile=1,
        smt_per_core=2,
        frequency_hz=2.5e9,
        flops_per_cycle=32.0,
        compute_efficiency=0.55,
        fast_bandwidth=256e9,
        per_core_bandwidth=15e9,
        fast_capacity=384 * 1024**3,
        l2_size_per_tile=1024 * 1024,
        smt_aggregate=(0.0, 1.0, 1.22),
        smt_memory_bound_bonus=0.25,
        op_dispatch_cost=8e-6,
        reconfiguration_cost=90e-6,
    )


def epyc_2s_128c() -> Machine:
    """Dual-socket Zen-2-like server: 2 x 64 cores in four-core complexes
    sharing a 16 MB L3 slice, 2-way SMT."""
    return make_machine(
        "epyc-2s-128c",
        num_cores=128,
        num_sockets=2,
        cores_per_tile=4,
        smt_per_core=2,
        frequency_hz=2.25e9,
        flops_per_cycle=16.0,
        compute_efficiency=0.55,
        fast_bandwidth=380e9,
        per_core_bandwidth=20e9,
        fast_capacity=512 * 1024**3,
        l2_size_per_tile=16 * 1024 * 1024,
        sibling_sharing_bonus=0.25,
        smt_aggregate=(0.0, 1.0, 1.25),
        smt_memory_bound_bonus=0.25,
        op_dispatch_cost=8e-6,
        reconfiguration_cost=90e-6,
    )


def desktop_8c() -> Machine:
    """Eight-core hyper-threaded desktop: high clocks, two memory channels."""
    return make_machine(
        "desktop-8c",
        num_cores=8,
        cores_per_tile=1,
        smt_per_core=2,
        frequency_hz=4.2e9,
        flops_per_cycle=16.0,
        compute_efficiency=0.6,
        fast_bandwidth=42e9,
        per_core_bandwidth=14e9,
        fast_capacity=32 * 1024**3,
        l2_size_per_tile=512 * 1024,
        smt_aggregate=(0.0, 1.0, 1.2),
        op_dispatch_cost=6e-6,
        reconfiguration_cost=60e-6,
    )


def laptop_4c() -> Machine:
    """Four-core mobile part: thermally-limited clocks, one memory channel."""
    return make_machine(
        "laptop-4c",
        num_cores=4,
        cores_per_tile=1,
        smt_per_core=2,
        frequency_hz=2.8e9,
        flops_per_cycle=16.0,
        compute_efficiency=0.5,
        fast_bandwidth=24e9,
        per_core_bandwidth=10e9,
        fast_capacity=16 * 1024**3,
        l2_size_per_tile=512 * 1024,
        smt_aggregate=(0.0, 1.0, 1.2),
        op_dispatch_cost=6e-6,
        reconfiguration_cost=60e-6,
    )


def cloud_vm_16v() -> Machine:
    """A 16-vCPU cloud instance: 8 physical cores exposing 2-way SMT,
    with noisy-neighbour-discounted efficiency and bandwidth."""
    return make_machine(
        "cloud-vm-16v",
        num_cores=8,
        cores_per_tile=1,
        smt_per_core=2,
        frequency_hz=3.0e9,
        flops_per_cycle=16.0,
        compute_efficiency=0.45,
        fast_bandwidth=30e9,
        per_core_bandwidth=9e9,
        fast_capacity=64 * 1024**3,
        l2_size_per_tile=1024 * 1024,
        smt_aggregate=(0.0, 1.0, 1.15),
        op_dispatch_cost=10e-6,
        reconfiguration_cost=120e-6,
    )


def arm_server_64c() -> Machine:
    """Graviton-2-like ARM server: 64 cores, no SMT, private 1 MB L2."""
    return make_machine(
        "arm-server-64c",
        num_cores=64,
        cores_per_tile=1,
        smt_per_core=1,
        frequency_hz=2.5e9,
        flops_per_cycle=8.0,
        compute_efficiency=0.6,
        fast_bandwidth=200e9,
        per_core_bandwidth=10e9,
        fast_capacity=256 * 1024**3,
        l2_size_per_tile=1024 * 1024,
        smt_aggregate=(0.0, 1.0),
        smt_memory_bound_bonus=0.0,
        op_dispatch_cost=8e-6,
        reconfiguration_cost=80e-6,
    )


def gpu_node_16c() -> Machine:
    """A 16-core accelerator host with an attached P100 (the GPU
    experiments read :attr:`Machine.gpu` when present)."""
    return make_machine(
        "gpu-node-16c",
        num_cores=16,
        cores_per_tile=1,
        smt_per_core=2,
        frequency_hz=2.6e9,
        flops_per_cycle=16.0,
        compute_efficiency=0.5,
        fast_bandwidth=76e9,
        per_core_bandwidth=12e9,
        fast_capacity=128 * 1024**3,
        l2_size_per_tile=1024 * 1024,
        smt_aggregate=(0.0, 1.0, 1.2),
        gpu=p100_gpu(),
    )


#: Named machine factories.  Factories (not instances) so a registry
#: lookup can never hand out shared mutable state, and so entries stay
#: cheap to import.
MACHINE_ZOO: dict[str, Callable[[], Machine]] = {
    "knl": knl_machine,
    "small-knl-8": lambda: small_knl_machine(8),
    "xeon-2s-56c": xeon_2s_56c,
    "epyc-2s-128c": epyc_2s_128c,
    "desktop-8c": desktop_8c,
    "laptop-4c": laptop_4c,
    "cloud-vm-16v": cloud_vm_16v,
    "arm-server-64c": arm_server_64c,
    "gpu-node-16c": gpu_node_16c,
}


def available_machines() -> tuple[str, ...]:
    """Names of every registered machine, in registration order."""
    return tuple(MACHINE_ZOO)


def get_machine(name: str) -> Machine:
    """Build the zoo machine registered under ``name``.

    Raises ``KeyError`` with the available names when ``name`` is unknown.
    """
    try:
        factory = MACHINE_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {', '.join(MACHINE_ZOO)}"
        ) from None
    return factory()


def resolve_machine(machine: str | Machine | None) -> Machine:
    """Coerce a zoo name, a :class:`Machine` or ``None`` to a machine.

    ``None`` resolves to the paper's KNL node, keeping every existing
    call site's default behaviour.
    """
    if machine is None:
        return knl_machine()
    if isinstance(machine, Machine):
        return machine
    return get_machine(machine)


def register_machine(
    name: str,
    factory: Callable[[], Machine],
    *,
    overwrite: bool = False,
) -> None:
    """Add (or replace, with ``overwrite=True``) a named machine factory.

    The factory is invoked once immediately to validate that it builds a
    well-formed :class:`Machine`.
    """
    if not name:
        raise ValueError("machine name must be non-empty")
    if name in MACHINE_ZOO and not overwrite:
        raise ValueError(f"machine {name!r} is already registered")
    built = factory()
    if not isinstance(built, Machine):
        raise TypeError(f"factory for {name!r} returned {type(built).__qualname__}")
    MACHINE_ZOO[name] = factory


def describe_zoo() -> str:
    """One line per registered machine, sorted by name (the CLI's
    ``--list-machines``) — deterministic regardless of registration order."""
    lines = []
    for name in sorted(MACHINE_ZOO):
        machine = get_machine(name)
        suffix = " + GPU" if machine.gpu is not None else ""
        lines.append(f"{name:>16}  {machine.describe()}{suffix}")
    return "\n".join(lines)


def machine_specs() -> dict[str, dict]:
    """Every zoo machine's headline facts, sorted by name.

    The machine-readable counterpart of :func:`describe_zoo`
    (``--list-machines --json``).  First-order topology facts only; the
    full analytic model stays behind :func:`get_machine`.
    """
    specs: dict[str, dict] = {}
    for name in sorted(MACHINE_ZOO):
        machine = get_machine(name)
        topology = machine.topology
        specs[name] = {
            "description": machine.describe(),
            "num_cores": topology.num_cores,
            "cores_per_tile": topology.cores_per_tile,
            "smt_per_core": topology.smt_per_core,
            "num_sockets": topology.num_sockets,
            "frequency_hz": topology.frequency_hz,
            "fast_bandwidth": machine.memory.fast_bandwidth,
            "gpu": machine.gpu.name if machine.gpu is not None else None,
        }
    return specs


def zoo_machines(names: Iterable[str] | None = None) -> tuple[Machine, ...]:
    """Build several zoo machines at once (``None``: the whole zoo)."""
    if names is None:
        names = MACHINE_ZOO
    return tuple(get_machine(name) for name in names)
