"""Top-level convenience API.

Wraps the most common end-to-end flow — build one of the paper's model
graphs, run the paper's runtime on the simulated KNL machine, and compare
against the TensorFlow-recommended configuration — behind a couple of
functions, so downstream users (and the quickstart example) do not need
to assemble the pieces by hand.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from typing import TYPE_CHECKING, Sequence

from repro.core.config import RuntimeConfig
from repro.core.runtime import TrainingRuntime
from repro.graph.dataflow import DataflowGraph
from repro.hardware.knl import knl_machine
from repro.hardware.topology import Machine
from repro.hardware.zoo import available_machines, get_machine, resolve_machine
from repro.models.registry import available_models as _available_models
from repro.models.registry import build_model
from repro.scenarios import Scenario, available_scenarios, get_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet import Job


def _record_outcome(store, kind: str, name: str, *, config, outcome) -> str | None:
    """Record an API outcome in the run store, best-effort.

    ``store`` is the caller's ``store=`` argument (None → process
    default, which records only when ``$REPRO_STORE_DIR`` is set).
    Returns the run id or ``None``; never raises for encoding/I/O
    problems (strict env-var errors do propagate — they are user
    configuration mistakes, not recording failures).
    """
    from repro.store import record_run, resolve_store

    resolved = resolve_store(store)
    if resolved is None:
        return None
    payload = {
        key: value
        for key, value in dataclasses.asdict(outcome).items()
        if key != "run_id"
    }
    return record_run(resolved, kind, name, config=config, payload=payload)


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of scheduling one model with the paper's runtime."""

    model: str
    step_time: float
    recommendation_time: float
    speedup_vs_recommendation: float
    average_corunning: float
    profiling_signatures: int
    #: Identity of this run's record in the run store (None when not recorded).
    run_id: str | None = None

    def __str__(self) -> str:
        return (
            f"{self.model}: step {self.step_time * 1e3:.1f} ms vs recommendation "
            f"{self.recommendation_time * 1e3:.1f} ms "
            f"({self.speedup_vs_recommendation:.2f}x speedup, "
            f"{self.average_corunning:.2f} ops co-running on average)"
        )


def available_models() -> tuple[str, ...]:
    """Names of the NN training workloads shipped with the library."""
    return _available_models()


def build_model_graph(name: str, batch_size: int | None = None, **kwargs) -> DataflowGraph:
    """Build the training-step dataflow graph of one of the paper's models."""
    return build_model(name, batch_size=batch_size, **kwargs)


def default_machine() -> Machine:
    """The simulated Intel KNL node the paper evaluates on."""
    return knl_machine()


def quick_schedule(
    model: str,
    *,
    machine: str | Machine | None = None,
    config: RuntimeConfig | None = None,
    batch_size: int | None = None,
    store=None,
    **model_kwargs,
) -> ScheduleOutcome:
    """Profile and schedule one training step of ``model`` with the runtime.

    ``machine`` accepts a :class:`Machine` or a machine-zoo name
    (``"xeon-2s-56c"``, ``"desktop-8c"``, ... — see
    :func:`repro.hardware.zoo.available_machines`); ``None`` keeps the
    paper's KNL node.  Returns the step time together with the speedup
    over the TensorFlow recommendation (intra-op = physical cores,
    inter-op = number of sockets).  ``store`` selects the run store the
    outcome is recorded in (see :func:`repro.store.resolve_store`;
    default: record only when ``$REPRO_STORE_DIR`` is set).
    """
    machine_label = machine if isinstance(machine, str) or machine is None else machine.name
    machine = resolve_machine(machine)
    graph = build_model(model, batch_size=batch_size, **model_kwargs)
    runtime = TrainingRuntime(machine, config)
    report = runtime.run(graph)
    outcome = ScheduleOutcome(
        model=model,
        step_time=report.step_time,
        recommendation_time=report.recommendation_time,
        speedup_vs_recommendation=report.speedup_vs_recommendation,
        average_corunning=report.average_corunning,
        profiling_signatures=report.profiling_signatures,
    )
    run_id = _record_outcome(
        store,
        "schedule",
        model,
        config={
            "model": model,
            "machine": machine_label,
            "batch_size": batch_size,
            "config": config,
            "model_kwargs": model_kwargs,
        },
        outcome=outcome,
    )
    if run_id is not None:
        outcome = dataclasses.replace(outcome, run_id=run_id)
    return outcome


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of running one named scenario end-to-end."""

    scenario: str
    machine: str
    graph_name: str
    num_ops: int
    step_time: float
    recommendation_time: float
    speedup_vs_recommendation: float
    average_corunning: float
    profiling_signatures: int
    #: Identity of this run's record in the run store (None when not recorded).
    run_id: str | None = None

    def __str__(self) -> str:
        return (
            f"{self.scenario} [{self.machine}] ({self.num_ops} ops): "
            f"step {self.step_time * 1e3:.1f} ms vs recommendation "
            f"{self.recommendation_time * 1e3:.1f} ms "
            f"({self.speedup_vs_recommendation:.2f}x speedup, "
            f"{self.average_corunning:.2f} ops co-running on average)"
        )


def run_scenario(
    scenario: str | Scenario,
    *,
    machine: str | Machine | None = None,
    seed: int | None = None,
    store=None,
) -> ScenarioOutcome:
    """Run one scenario (by name or value) end-to-end with the runtime.

    ``machine``/``seed`` override the scenario's bindings without
    re-registering it — handy for sweeping one workload mix across the
    zoo.  The same scenario and seed always produce the same outcome.
    ``store`` selects the run store the outcome is recorded in (see
    :func:`repro.store.resolve_store`; default: record only when
    ``$REPRO_STORE_DIR`` is set).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if seed is not None:
        scenario = dataclasses.replace(scenario, seed=seed)
    resolved = resolve_machine(machine) if machine is not None else scenario.build_machine()
    # Report the zoo registry key when one was used (a Machine's own name
    # may be a long description, e.g. the KNL entry), so outcomes compare
    # cleanly against scenario.machine / available_machines().
    if isinstance(machine, str):
        machine_label = machine
    elif machine is not None:
        machine_label = machine.name
    else:
        machine_label = scenario.machine
    graph = scenario.build_graph()
    runtime = TrainingRuntime(resolved, scenario.build_config())
    report = runtime.run(graph)
    outcome = ScenarioOutcome(
        scenario=scenario.name,
        machine=machine_label,
        graph_name=graph.name,
        num_ops=len(graph),
        step_time=report.step_time,
        recommendation_time=report.recommendation_time,
        speedup_vs_recommendation=report.speedup_vs_recommendation,
        average_corunning=report.average_corunning,
        profiling_signatures=report.profiling_signatures,
    )
    run_id = _record_outcome(
        store,
        "scenario",
        scenario.name,
        config={
            "scenario": scenario.to_dict(),
            "machine": machine_label,
            "seed": scenario.seed,
        },
        outcome=outcome,
    )
    if run_id is not None:
        outcome = dataclasses.replace(outcome, run_id=run_id)
    return outcome


# -- fleet scheduling ---------------------------------------------------------------

#: The default fleet: five zoo machines spanning fast desktops, a
#: thermally-limited laptop, a noisy cloud VM and an SMT-less ARM server
#: — heterogeneous enough that placement quality actually matters.
DEFAULT_FLEET: tuple[str, ...] = (
    "desktop-8c",
    "laptop-4c",
    "cloud-vm-16v",
    "desktop-8c",
    "arm-server-64c",
)


@dataclass(frozen=True)
class FleetOutcome:
    """Result of placing one job trace across a fleet of machines."""

    policy: str
    machines: tuple[str, ...]
    num_jobs: int
    makespan: float
    mean_wait_time: float
    mean_turnaround_time: float
    total_rounds: int
    corun_rounds: int
    blacklisted_pairs: tuple[tuple[str, str], ...]
    scheduler_overhead_seconds: float
    estimates_requested: int
    estimates_computed: int
    #: Heap events the simulator processed — O(mix changes) on the
    #: compressed fast path vs O(total steps) on the reference path.
    events_processed: int = 0
    # -- fault accounting (all zero on a fault-free run) -------------------------
    #: Jobs that exhausted their retry budget (names, sorted by failure time).
    failed_jobs: tuple[str, ...] = ()
    #: Crash-requeues across the fleet.
    retries: int = 0
    #: Preemptions applied across the fleet.
    preemptions: int = 0
    #: Training steps destroyed by aborted in-flight rounds.
    lost_steps: int = 0
    # -- admission / SLO accounting (all zero without admission control) ---------
    #: Jobs shed by the admission controller (never placed).
    rejections: int = 0
    #: rejections / offered jobs (0.0 when everything was admitted).
    shed_rate: float = 0.0
    #: Deepest the central queue ever got (bounded by ``queue_limit``
    #: whenever an admission controller is active).
    peak_queue_depth: int = 0
    #: Exact nearest-rank wait-time percentiles: (("p50", ...), ("p95", ...),
    #: ("p99", ...)).
    wait_percentiles: tuple[tuple[str, float], ...] = ()
    #: Identity of this run's record in the run store (None when not recorded).
    run_id: str | None = None

    @property
    def p99_wait_time(self) -> float:
        """The p99 wait — the headline SLO number under overload."""
        return dict(self.wait_percentiles).get("p99", 0.0)

    def __str__(self) -> str:
        text = (
            f"fleet[{self.policy}] on {len(self.machines)} machines: "
            f"{self.num_jobs} jobs in {self.makespan:.2f} s "
            f"(mean wait {self.mean_wait_time:.2f} s, "
            f"{self.corun_rounds}/{self.total_rounds} co-run rounds, "
            f"{len(self.blacklisted_pairs)} blacklisted pairings, "
            f"scheduler overhead {self.scheduler_overhead_seconds * 1e3:.1f} ms)"
        )
        if self.retries or self.preemptions or self.lost_steps or self.failed_jobs:
            text += (
                f" [faults: {self.retries} retries, {self.preemptions} preemptions, "
                f"{self.lost_steps} lost steps, {len(self.failed_jobs)} failed]"
            )
        if self.rejections:
            text += (
                f" [admission: {self.rejections} shed "
                f"({self.shed_rate:.0%}), peak queue {self.peak_queue_depth}, "
                f"p99 wait {self.p99_wait_time:.2f} s]"
            )
        return text


def run_fleet(
    jobs: Sequence["Job"] | None = None,
    *,
    machines: Sequence[str] = DEFAULT_FLEET,
    policy: str = "interference-aware",
    num_jobs: int = 20,
    arrival_seed: int = 0,
    mean_interarrival: float = 2.0,
    min_steps: int = 3,
    max_steps: int = 10,
    arrival_process=None,
    queue_limit: int | None = None,
    deadline: float | None = None,
    shed_policy: str = "reject-at-arrival",
    max_corun: int | None = None,
    config: RuntimeConfig | None = None,
    executor=None,
    compressed: bool = True,
    shards: int | None = None,
    fleet_backend: str = "serial",
    faults=None,
    checkpoint=None,
    store=None,
    _resume=None,
) -> FleetOutcome:
    """Place a stream of training jobs across many zoo machines.

    ``jobs`` defaults to a deterministic generated trace of ``num_jobs``
    jobs (``arrival_seed`` drives arrivals, kinds and step counts,
    ``mean_interarrival`` sets the offered load,
    ``min_steps``/``max_steps`` bound the per-job training length — see
    :func:`repro.fleet.generate_trace`; ``num_jobs=0`` yields a
    well-formed empty outcome).  ``arrival_process`` instead streams an
    open-loop arrival process (an
    :class:`~repro.fleet.ArrivalProcess`, a registered arrival-spec name
    such as ``"overload"`` — see
    :func:`repro.scenarios.available_arrival_specs` — a spec dict or a
    JSON string/path); the trace is pulled lazily, never materialised.
    ``queue_limit`` / ``deadline`` / ``shed_policy`` activate admission
    control (:class:`~repro.fleet.AdmissionController`): under overload
    the fleet sheds work instead of growing the queue without bound, and
    the outcome reports rejections, shed rate, peak queue depth and
    exact wait percentiles.  ``policy`` is one of
    :func:`repro.fleet.available_policies` (``"first-fit"``,
    ``"load-balanced"``, ``"interference-aware"``).  ``compressed``
    selects the round-compression fast path (default) or the one-event-
    per-round reference loop — both produce the identical deterministic
    outcome.  ``shards`` partitions the machines into that many disjoint
    groups advanced independently between fleet-wide synchronisation
    points (see :mod:`repro.fleet.sharding`); ``fleet_backend``
    (``"serial"``/``"thread"``/``"process"``) selects how shard windows
    execute.  The sharded engine requires the compressed path and is
    byte-identical to it, so the default (``shards=None``) changes
    nothing for existing call sites.  ``faults`` injects a deterministic
    fault plan (machine
    crashes, joins, drains, stragglers, preemptions): a
    :class:`~repro.fleet.FaultPlan`, a registered fault-spec name
    (:func:`repro.scenarios.available_fault_specs`), a spec dict or a
    JSON string/path — see :mod:`repro.fleet.faults`.  The same (trace,
    policy, machine set, fault plan, admission settings) always produces
    the identical outcome.  ``store`` selects the run store the full
    result history is recorded in (see :func:`repro.store.resolve_store`;
    default: record only when ``$REPRO_STORE_DIR`` is set) — stored runs
    replay their reports via ``python -m repro report`` without
    re-simulating.
    """
    from repro.fleet import (
        AdmissionController,
        ArrivalProcess,
        FleetSimulator,
        ReplayArrivals,
        generate_trace,
        resolve_arrivals,
    )
    from repro.fleet.simulator import DEFAULT_MAX_CORUN

    generated_spec = None
    if arrival_process is not None:
        if jobs is not None:
            raise ValueError("pass either jobs or arrival_process, not both")
        jobs = resolve_arrivals(
            arrival_process,
            num_jobs=num_jobs,
            seed=arrival_seed,
            mean_interarrival=mean_interarrival,
            min_steps=min_steps,
            max_steps=max_steps,
        )
    elif jobs is None:
        jobs = (
            generate_trace(
                num_jobs,
                seed=arrival_seed,
                mean_interarrival=mean_interarrival,
                min_steps=min_steps,
                max_steps=max_steps,
            )
            if num_jobs > 0
            else ()
        )
        # The generated default is exactly a seeded Poisson process; keep
        # its spec so the stored config reproduces the trace.
        generated_spec = {
            "kind": "poisson",
            "num_jobs": num_jobs,
            "seed": arrival_seed,
            "mean_interarrival": mean_interarrival,
            "min_steps": min_steps,
            "max_steps": max_steps,
        }
    admission = None
    if queue_limit is not None or deadline is not None:
        admission = AdmissionController(
            queue_limit=queue_limit, deadline=deadline, shed_policy=shed_policy
        )
    simulator = FleetSimulator(
        machines,
        policy=policy,
        executor=executor,
        config=config,
        max_corun=max_corun if max_corun is not None else DEFAULT_MAX_CORUN,
        compressed=compressed,
        shards=shards,
        shard_backend=fleet_backend,
        faults=faults,
        admission=admission,
    )
    fleet_config = _fleet_config(
        machines=machines,
        policy_name=getattr(simulator.policy, "name", str(policy)),
        max_corun=max_corun if max_corun is not None else DEFAULT_MAX_CORUN,
        compressed=compressed,
        shards=shards,
        fleet_backend=fleet_backend,
        admission=admission,
        faults=faults,
        generated_spec=generated_spec,
        jobs=jobs,
        arrival_process_cls=ArrivalProcess,
        replay_cls=ReplayArrivals,
    )
    ckpt = None
    if checkpoint is not None and checkpoint is not False:
        from repro.resilience.checkpoint import Checkpointer, resolve_checkpoint

        if isinstance(checkpoint, Checkpointer):
            ckpt = checkpoint
        else:
            if fleet_config is None:
                raise ValueError(
                    "checkpointing needs a recordable run config; pass a "
                    "serialisable arrival process (or a generated trace)"
                )
            from repro.store.record import run_key

            ckpt = resolve_checkpoint(
                checkpoint,
                run_id=run_key("fleet", "run_fleet", fleet_config),
                manifest={"config": fleet_config},
            )
    if ckpt is not None:
        from repro.resilience.checkpoint import GracefulInterrupt, RunInterrupted

        try:
            with GracefulInterrupt(ckpt):
                result = simulator.run(jobs, checkpoint=ckpt, resume_from=_resume)
        except RunInterrupted as exc:
            _record_interrupted_fleet(store, fleet_config, exc)
            raise
    else:
        result = simulator.run(jobs, resume_from=_resume)
    outcome = FleetOutcome(
        policy=result.policy_name,
        machines=result.machine_names,
        num_jobs=result.num_jobs,
        makespan=result.makespan,
        mean_wait_time=result.mean_wait_time,
        mean_turnaround_time=result.mean_turnaround_time,
        total_rounds=sum(m.rounds for m in result.machine_reports),
        corun_rounds=sum(m.corun_rounds for m in result.machine_reports),
        blacklisted_pairs=result.blacklisted_pairs,
        scheduler_overhead_seconds=result.scheduler_overhead_seconds,
        estimates_requested=result.estimates_requested,
        estimates_computed=result.estimates_computed,
        events_processed=result.events_processed,
        failed_jobs=tuple(f.job for f in result.failures),
        retries=result.retries,
        preemptions=result.preemptions,
        lost_steps=result.lost_steps,
        rejections=len(result.rejections),
        shed_rate=result.shed_rate,
        peak_queue_depth=result.peak_queue_depth,
        wait_percentiles=tuple(sorted(result.wait_percentiles.items())),
    )
    run_id = _record_fleet_result(store, result, config=fleet_config)
    if run_id is not None:
        outcome = dataclasses.replace(outcome, run_id=run_id)
    return outcome


def _fleet_config(
    *,
    machines,
    policy_name,
    max_corun,
    compressed,
    shards,
    fleet_backend,
    admission,
    faults,
    generated_spec,
    jobs,
    arrival_process_cls,
    replay_cls,
):
    """The canonical (JSON-ready) config dict of one ``run_fleet`` call.

    Built *before* the simulation so checkpointing can derive the run id
    up front; the run store records the exact same dict afterwards, so a
    resumed run lands on the same ``run_id`` as its uninterrupted twin.
    Spec capture (arrival/fault) is defensive: an unserialisable custom
    process or plan degrades the stored config (returning ``None``
    disables recording/checkpoint identity), never the run.
    """
    from repro.fleet.faults import resolve_fault_plan
    from repro.store.record import RecordingError, jsonify

    arrival_spec = generated_spec
    if arrival_spec is None:
        try:
            process = (
                jobs
                if isinstance(jobs, arrival_process_cls)
                else replay_cls(trace=tuple(jobs))
            )
            arrival_spec = process.to_dict()
        except Exception:
            arrival_spec = None
    fault_spec = None
    if faults is not None:
        try:
            fault_spec = resolve_fault_plan(faults).to_dict()
        except Exception:
            fault_spec = None
    config = {
        "machines": list(machines),
        "policy": policy_name,
        "max_corun": max_corun,
        "compressed": compressed,
        "admission": admission.to_dict() if admission is not None else None,
        "faults": fault_spec,
        "arrivals": arrival_spec,
    }
    # Shard config is recorded (so ``repro report diff`` shows the shard
    # delta) but, like OVERHEAD_KEYS, it never enters the payload digest:
    # a sharded and an unsharded run of the same trace digest-match.  The
    # key is only present when sharding is on, so existing unsharded
    # run_ids are unchanged.
    if shards is not None:
        config["sharding"] = {"shards": shards, "backend": fleet_backend}
    try:
        return jsonify(config)
    except RecordingError:
        return None


def _record_fleet_result(store, result, *, config) -> str | None:
    """Record a fleet run's full history, best-effort.

    The payload is the complete :meth:`FleetResult.to_dict` (with
    overhead); the digest excludes
    :data:`~repro.fleet.simulator.OVERHEAD_KEYS`, making the stored
    digest byte-compatible with the benchmark determinism gate.
    """
    from repro.store import record_run, resolve_store

    resolved = resolve_store(store)
    if resolved is None or config is None:
        return None
    from repro.fleet.simulator import OVERHEAD_KEYS

    return record_run(
        resolved,
        "fleet",
        "run_fleet",
        config=config,
        payload=result,
        digest_excludes=OVERHEAD_KEYS,
    )


def _record_interrupted_fleet(store, config, exc) -> str | None:
    """Best-effort partial record of an interrupted fleet run.

    Marked ``interrupted=True`` in the extras so ``repro report list``
    can flag it; recorded under the *same* run id as the eventual
    complete run, so a successful resume simply supersedes the stub
    (latest record wins).
    """
    from repro.store import record_run, resolve_store

    resolved = resolve_store(store)
    if resolved is None or config is None:
        return None
    return record_run(
        resolved,
        "fleet",
        "run_fleet",
        config=config,
        payload={
            "interrupted": True,
            "events_processed": exc.events,
            "checkpoint_seq": exc.seq,
        },
        extras={"interrupted": True},
    )
