"""Top-level convenience API.

Wraps the most common end-to-end flow — build one of the paper's model
graphs, run the paper's runtime on the simulated KNL machine, and compare
against the TensorFlow-recommended configuration — behind a couple of
functions, so downstream users (and the quickstart example) do not need
to assemble the pieces by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RuntimeConfig
from repro.core.runtime import TrainingRuntime
from repro.graph.dataflow import DataflowGraph
from repro.hardware.knl import knl_machine
from repro.hardware.topology import Machine
from repro.hardware.zoo import available_machines, get_machine, resolve_machine
from repro.models.registry import available_models as _available_models
from repro.models.registry import build_model
from repro.scenarios import Scenario, available_scenarios, get_scenario


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of scheduling one model with the paper's runtime."""

    model: str
    step_time: float
    recommendation_time: float
    speedup_vs_recommendation: float
    average_corunning: float
    profiling_signatures: int

    def __str__(self) -> str:
        return (
            f"{self.model}: step {self.step_time * 1e3:.1f} ms vs recommendation "
            f"{self.recommendation_time * 1e3:.1f} ms "
            f"({self.speedup_vs_recommendation:.2f}x speedup, "
            f"{self.average_corunning:.2f} ops co-running on average)"
        )


def available_models() -> tuple[str, ...]:
    """Names of the NN training workloads shipped with the library."""
    return _available_models()


def build_model_graph(name: str, batch_size: int | None = None, **kwargs) -> DataflowGraph:
    """Build the training-step dataflow graph of one of the paper's models."""
    return build_model(name, batch_size=batch_size, **kwargs)


def default_machine() -> Machine:
    """The simulated Intel KNL node the paper evaluates on."""
    return knl_machine()


def quick_schedule(
    model: str,
    *,
    machine: str | Machine | None = None,
    config: RuntimeConfig | None = None,
    batch_size: int | None = None,
    **model_kwargs,
) -> ScheduleOutcome:
    """Profile and schedule one training step of ``model`` with the runtime.

    ``machine`` accepts a :class:`Machine` or a machine-zoo name
    (``"xeon-2s-56c"``, ``"desktop-8c"``, ... — see
    :func:`repro.hardware.zoo.available_machines`); ``None`` keeps the
    paper's KNL node.  Returns the step time together with the speedup
    over the TensorFlow recommendation (intra-op = physical cores,
    inter-op = number of sockets).
    """
    machine = resolve_machine(machine)
    graph = build_model(model, batch_size=batch_size, **model_kwargs)
    runtime = TrainingRuntime(machine, config)
    report = runtime.run(graph)
    return ScheduleOutcome(
        model=model,
        step_time=report.step_time,
        recommendation_time=report.recommendation_time,
        speedup_vs_recommendation=report.speedup_vs_recommendation,
        average_corunning=report.average_corunning,
        profiling_signatures=report.profiling_signatures,
    )


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of running one named scenario end-to-end."""

    scenario: str
    machine: str
    graph_name: str
    num_ops: int
    step_time: float
    recommendation_time: float
    speedup_vs_recommendation: float
    average_corunning: float
    profiling_signatures: int

    def __str__(self) -> str:
        return (
            f"{self.scenario} [{self.machine}] ({self.num_ops} ops): "
            f"step {self.step_time * 1e3:.1f} ms vs recommendation "
            f"{self.recommendation_time * 1e3:.1f} ms "
            f"({self.speedup_vs_recommendation:.2f}x speedup, "
            f"{self.average_corunning:.2f} ops co-running on average)"
        )


def run_scenario(
    scenario: str | Scenario,
    *,
    machine: str | Machine | None = None,
    seed: int | None = None,
) -> ScenarioOutcome:
    """Run one scenario (by name or value) end-to-end with the runtime.

    ``machine``/``seed`` override the scenario's bindings without
    re-registering it — handy for sweeping one workload mix across the
    zoo.  The same scenario and seed always produce the same outcome.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if seed is not None:
        import dataclasses

        scenario = dataclasses.replace(scenario, seed=seed)
    resolved = resolve_machine(machine) if machine is not None else scenario.build_machine()
    # Report the zoo registry key when one was used (a Machine's own name
    # may be a long description, e.g. the KNL entry), so outcomes compare
    # cleanly against scenario.machine / available_machines().
    if isinstance(machine, str):
        machine_label = machine
    elif machine is not None:
        machine_label = machine.name
    else:
        machine_label = scenario.machine
    graph = scenario.build_graph()
    runtime = TrainingRuntime(resolved, scenario.build_config())
    report = runtime.run(graph)
    return ScenarioOutcome(
        scenario=scenario.name,
        machine=machine_label,
        graph_name=graph.name,
        num_ops=len(graph),
        step_time=report.step_time,
        recommendation_time=report.recommendation_time,
        speedup_vs_recommendation=report.speedup_vs_recommendation,
        average_corunning=report.average_corunning,
        profiling_signatures=report.profiling_signatures,
    )
