"""Top-level convenience API.

Wraps the most common end-to-end flow — build one of the paper's model
graphs, run the paper's runtime on the simulated KNL machine, and compare
against the TensorFlow-recommended configuration — behind a couple of
functions, so downstream users (and the quickstart example) do not need
to assemble the pieces by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RuntimeConfig
from repro.core.runtime import TrainingRuntime
from repro.graph.dataflow import DataflowGraph
from repro.hardware.knl import knl_machine
from repro.hardware.topology import Machine
from repro.models.registry import available_models as _available_models
from repro.models.registry import build_model


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of scheduling one model with the paper's runtime."""

    model: str
    step_time: float
    recommendation_time: float
    speedup_vs_recommendation: float
    average_corunning: float
    profiling_signatures: int

    def __str__(self) -> str:
        return (
            f"{self.model}: step {self.step_time * 1e3:.1f} ms vs recommendation "
            f"{self.recommendation_time * 1e3:.1f} ms "
            f"({self.speedup_vs_recommendation:.2f}x speedup, "
            f"{self.average_corunning:.2f} ops co-running on average)"
        )


def available_models() -> tuple[str, ...]:
    """Names of the NN training workloads shipped with the library."""
    return _available_models()


def build_model_graph(name: str, batch_size: int | None = None, **kwargs) -> DataflowGraph:
    """Build the training-step dataflow graph of one of the paper's models."""
    return build_model(name, batch_size=batch_size, **kwargs)


def default_machine() -> Machine:
    """The simulated Intel KNL node the paper evaluates on."""
    return knl_machine()


def quick_schedule(
    model: str,
    *,
    machine: Machine | None = None,
    config: RuntimeConfig | None = None,
    batch_size: int | None = None,
    **model_kwargs,
) -> ScheduleOutcome:
    """Profile and schedule one training step of ``model`` with the runtime.

    Returns the step time together with the speedup over the TensorFlow
    recommendation (intra-op = physical cores, inter-op = 1).
    """
    machine = machine or knl_machine()
    graph = build_model(model, batch_size=batch_size, **model_kwargs)
    runtime = TrainingRuntime(machine, config)
    report = runtime.run(graph)
    return ScheduleOutcome(
        model=model,
        step_time=report.step_time,
        recommendation_time=report.recommendation_time,
        speedup_vs_recommendation=report.speedup_vs_recommendation,
        average_corunning=report.average_corunning,
        profiling_signatures=report.profiling_signatures,
    )
