"""Configuration of the runtime scheduler and its performance model."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the paper's runtime.

    The four ``strategy*`` switches correspond to Section III-D; disabling
    them one by one reproduces the ablation of Fig. 3.

    Attributes
    ----------
    strategy1_per_op_concurrency:
        Choose the intra-op parallelism of every operation from the
        performance model (instead of the uniform user setting).
    strategy2_stable_concurrency:
        Use one thread count per operation *type* (determined by its
        largest-input instance) to avoid frequent concurrency changes.
    strategy3_corun:
        Co-run ready operations on disjoint core partitions when they fit
        the idle cores without hurting throughput.
    strategy4_hyperthreading:
        Pack small operations onto free SMT slots when a core-filling
        operation owns every physical core.
    hill_climbing_interval:
        The thread-count increment ``x`` of the hill-climbing profiler.
    corun_candidates:
        How many of the most performant configurations are considered per
        ready operation in Strategy 3 (the paper uses three).
    stable_concurrency_tolerance:
        Maximum allowed difference between Strategy 3's chosen thread
        count and Strategy 2's stable thread count (the paper uses two);
        larger deviations fall back to the stable count.
    small_op_max_threads:
        Upper bound on the thread count of operations packed onto
        hyper-threads by Strategy 4.
    interference_threshold:
        Relative per-op slowdown above which a co-run pairing is recorded
        as harmful and avoided in later steps.
    profiling_noise_sigma:
        Log-normal noise applied to profiling measurements (models
        run-to-run variation during the profiling steps).
    seed:
        Seed for every stochastic component of the runtime.
    """

    strategy1_per_op_concurrency: bool = True
    strategy2_stable_concurrency: bool = True
    strategy3_corun: bool = True
    strategy4_hyperthreading: bool = True
    hill_climbing_interval: int = 4
    corun_candidates: int = 3
    stable_concurrency_tolerance: int = 2
    small_op_max_threads: int = 8
    interference_threshold: float = 0.5
    profiling_noise_sigma: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hill_climbing_interval < 1:
            raise ValueError("hill_climbing_interval must be at least 1")
        if self.corun_candidates < 1:
            raise ValueError("corun_candidates must be at least 1")
        if self.stable_concurrency_tolerance < 0:
            raise ValueError("stable_concurrency_tolerance must be non-negative")
        if self.small_op_max_threads < 1:
            raise ValueError("small_op_max_threads must be at least 1")
        if self.interference_threshold < 0:
            raise ValueError("interference_threshold must be non-negative")
        if self.profiling_noise_sigma < 0:
            raise ValueError("profiling_noise_sigma must be non-negative")
        if self.strategy2_stable_concurrency and not self.strategy1_per_op_concurrency:
            raise ValueError(
                "Strategy 2 stabilises the per-operation concurrency chosen by "
                "Strategy 1 and cannot be enabled without it"
            )

    # -- ablation helpers (Fig. 3) -------------------------------------------------

    def with_strategies(
        self,
        *,
        s1: bool | None = None,
        s2: bool | None = None,
        s3: bool | None = None,
        s4: bool | None = None,
    ) -> "RuntimeConfig":
        """Return a copy with selected strategies toggled."""
        return replace(
            self,
            strategy1_per_op_concurrency=(
                self.strategy1_per_op_concurrency if s1 is None else s1
            ),
            strategy2_stable_concurrency=(
                self.strategy2_stable_concurrency if s2 is None else s2
            ),
            strategy3_corun=self.strategy3_corun if s3 is None else s3,
            strategy4_hyperthreading=(
                self.strategy4_hyperthreading if s4 is None else s4
            ),
        )

    @staticmethod
    def strategies_1_2() -> "RuntimeConfig":
        """Only concurrency control (Fig. 3a)."""
        return RuntimeConfig(strategy3_corun=False, strategy4_hyperthreading=False)

    @staticmethod
    def strategies_1_2_3() -> "RuntimeConfig":
        """Concurrency control plus co-running (Fig. 3b)."""
        return RuntimeConfig(strategy4_hyperthreading=False)

    @staticmethod
    def all_strategies() -> "RuntimeConfig":
        """The full runtime (Fig. 3c/d)."""
        return RuntimeConfig()

    @property
    def label(self) -> str:
        """Short human readable description of the enabled strategies."""
        enabled = []
        if self.strategy1_per_op_concurrency:
            enabled.append("S1")
        if self.strategy2_stable_concurrency:
            enabled.append("S2")
        if self.strategy3_corun:
            enabled.append("S3")
        if self.strategy4_hyperthreading:
            enabled.append("S4")
        return "+".join(enabled) if enabled else "none"
