"""Decision-tree-based selection of hardware-counter features.

The paper collects 26 counter events plus the execution time (27 features)
but notes that they cannot all be recorded at once and that many are
redundant.  A decision-tree estimator ranks the events by impurity
reduction and the top four are kept (the paper selects CPU cycles, LLC
misses, LLC accesses and L1 hits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.counters import CounterEvent, SELECTED_FEATURES
from repro.mlkit.tree import DecisionTreeRegression


@dataclass(frozen=True)
class FeatureSelectionResult:
    """Ranked counter events with their importances."""

    events: tuple[CounterEvent, ...]
    importances: dict[CounterEvent, float]

    def top(self, k: int) -> tuple[CounterEvent, ...]:
        if k < 1:
            raise ValueError("k must be at least 1")
        return self.events[:k]


def select_counter_features(
    feature_matrix: np.ndarray,
    targets: np.ndarray,
    events: tuple[CounterEvent, ...],
    *,
    num_features: int = 4,
    max_depth: int = 6,
) -> FeatureSelectionResult:
    """Rank ``events`` by decision-tree importance for predicting ``targets``.

    ``feature_matrix`` has one column per event (already normalised by the
    instruction count); ``targets`` are the execution times to predict.
    """
    X = np.asarray(feature_matrix, dtype=float)
    y = np.asarray(targets, dtype=float).ravel()
    if X.ndim != 2 or X.shape[1] != len(events):
        raise ValueError(
            f"feature matrix must have {len(events)} columns, got shape {X.shape}"
        )
    if X.shape[0] != y.shape[0]:
        raise ValueError("feature matrix and targets must have the same number of rows")
    if num_features < 1 or num_features > len(events):
        raise ValueError("num_features must lie in [1, number of events]")

    tree = DecisionTreeRegression(max_depth=max_depth, min_samples_split=4)
    tree.fit(X, y)
    assert tree.feature_importances_ is not None
    importances = {
        event: float(importance)
        for event, importance in zip(events, tree.feature_importances_)
    }
    ranked = tuple(
        sorted(events, key=lambda e: (-importances[e], e.value))
    )
    return FeatureSelectionResult(events=ranked, importances=importances)


def default_selected_features() -> tuple[CounterEvent, ...]:
    """The four features the paper settles on."""
    return SELECTED_FEATURES
