"""The paper's contribution: performance-model-driven concurrency control
and operation scheduling.

* :mod:`repro.core.hill_climbing` — the hill-climbing performance model
  (Section III-C): a lightweight profile-and-interpolate predictor of an
  operation's execution time as a function of thread count and affinity.
* :mod:`repro.core.regression_model` — the regression-based performance
  model (Section III-B) built on hardware-counter features, reproduced to
  show (as in the paper) that it is not accurate enough.
* :mod:`repro.core.strategies` / :mod:`repro.core.scheduler` — the four
  runtime scheduling strategies (per-op intra-op parallelism, concurrency
  stabilisation, partitioned co-running, hyper-thread packing).
* :mod:`repro.core.runtime` — the end-to-end runtime: profile for a few
  steps, build the performance model, then schedule the remaining steps.
"""

from repro.core.config import RuntimeConfig
from repro.core.perf_model import (
    ConfigurationPrediction,
    PerformanceModel,
    PredictionAccuracy,
)
from repro.core.hill_climbing import HillClimbingModel, HillClimbingProfile
from repro.core.oracle import OraclePerformanceModel
from repro.core.regression_model import RegressionPerformanceModel, select_sample_cases
from repro.core.feature_selection import (
    FeatureSelectionResult,
    select_counter_features,
)
from repro.core.interference import InterferenceTracker
from repro.core.scheduler import RuntimeSchedulerPolicy
from repro.core.runtime import TrainingRuntime, TrainingReport, StrategyComparison

__all__ = [
    "RuntimeConfig",
    "PerformanceModel",
    "ConfigurationPrediction",
    "PredictionAccuracy",
    "HillClimbingModel",
    "HillClimbingProfile",
    "OraclePerformanceModel",
    "RegressionPerformanceModel",
    "select_sample_cases",
    "FeatureSelectionResult",
    "select_counter_features",
    "InterferenceTracker",
    "RuntimeSchedulerPolicy",
    "TrainingRuntime",
    "TrainingReport",
    "StrategyComparison",
]
