"""The regression-based performance model (Section III-B).

One regressor per prediction case: on the full KNL machine there are 68
cases (34 "spread" thread counts with no cache sharing plus 34 even
"shared" counts).  Every operation contributes one training row whose
features are the normalised hardware-counter readings (plus the measured
execution time) collected while running the operation at ``N`` sample
cases; the row's target for case ``c`` is the operation's execution time
at ``c``.

The paper's conclusion — which this reproduction preserves by
construction of the counter noise model — is that the approach is *not*
accurate enough: counter readings of short operations are noisy, so the
predictions mislead the scheduler, and the models are architecture
dependent.  The hill-climbing model supersedes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.perf_model import ConfigurationPrediction, PredictionAccuracy
from repro.execsim.standalone import StandaloneRunner
from repro.graph.op import OpInstance, OpSignature
from repro.hardware.affinity import AffinityMode, ThreadPlacement
from repro.hardware.counters import CounterEvent, CounterSimulator, SELECTED_FEATURES
from repro.hardware.topology import Machine
from repro.mlkit.base import Regressor
from repro.mlkit.knn import KNeighborsRegression
from repro.mlkit.preprocessing import StandardScaler
from repro.ops.cost import characterize
from repro.utils.seeding import SeedSequenceFactory

RegressorFactory = Callable[[], Regressor]


def select_sample_cases(
    machine: Machine, num_samples: int
) -> tuple[tuple[int, AffinityMode], ...]:
    """Evenly sample the (threads, affinity) space, alternating affinities.

    This mirrors the paper's "evenly sampling the search space of possible
    intra-op parallelisms with the consideration of cache sharing".
    """
    if num_samples < 1:
        raise ValueError("num_samples must be at least 1")
    spread = ThreadPlacement.feasible_thread_counts(AffinityMode.SPREAD, machine.topology)
    shared = ThreadPlacement.feasible_thread_counts(AffinityMode.SHARED, machine.topology)
    cases: list[tuple[int, AffinityMode]] = []
    for index in range(num_samples):
        pool, affinity = (
            (spread, AffinityMode.SPREAD) if index % 2 == 0 else (shared, AffinityMode.SHARED)
        )
        position = int(round((index + 0.5) / num_samples * (len(pool) - 1)))
        cases.append((pool[position], affinity))
    # Deduplicate while keeping order (tiny sample counts may collide).
    unique: list[tuple[int, AffinityMode]] = []
    for case in cases:
        if case not in unique:
            unique.append(case)
    return tuple(unique)


@dataclass(frozen=True)
class OperationProfile:
    """Features collected for one operation during the profiling steps."""

    signature: OpSignature
    features: np.ndarray


class RegressionPerformanceModel:
    """Per-case regressors over hardware-counter features."""

    def __init__(
        self,
        machine: Machine,
        *,
        regressor_factory: RegressorFactory | None = None,
        num_samples: int = 4,
        features: tuple[CounterEvent, ...] = SELECTED_FEATURES,
        counter_simulator: CounterSimulator | None = None,
        seed: int = 0,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be at least 1")
        self.machine = machine
        self.regressor_factory = regressor_factory or (lambda: KNeighborsRegression())
        self.num_samples = num_samples
        self.features = features
        self.counters = counter_simulator or CounterSimulator()
        self.sample_cases = select_sample_cases(machine, num_samples)
        self._seeds = SeedSequenceFactory(seed)
        self._models: dict[tuple[int, AffinityMode], Regressor] = {}
        self._profiles: dict[OpSignature, OperationProfile] = {}
        self._scaler = StandardScaler()
        self._trained = False

    # -- feature extraction ------------------------------------------------------------

    def _prediction_cases(self) -> tuple[tuple[int, AffinityMode], ...]:
        cases: list[tuple[int, AffinityMode]] = []
        for affinity in (AffinityMode.SPREAD, AffinityMode.SHARED):
            for count in ThreadPlacement.feasible_thread_counts(
                affinity, self.machine.topology
            ):
                cases.append((count, affinity))
        return tuple(cases)

    def collect_features(self, op: OpInstance, runner: StandaloneRunner) -> np.ndarray:
        """Counter features (+ measured time) of ``op`` at every sample case."""
        chars = characterize(op, runner.registry)
        rows: list[float] = []
        for index, (threads, affinity) in enumerate(self.sample_cases):
            breakdown = runner.measure(op, threads, affinity)
            duration = runner.run(op, threads, affinity)
            sample = self.counters.collect(
                flops=chars.flops,
                bytes_from_memory=breakdown.bytes_from_memory,
                bytes_total=chars.bytes_touched,
                duration=max(duration, 1e-9),
                threads=threads,
                frequency_hz=self.machine.topology.frequency_hz,
                branchiness=chars.branchiness,
                seed=self._seeds.child_seed(f"{op.signature}:{index}"),
            )
            rows.extend(sample.as_feature_vector(self.features).tolist())
            rows.append(duration)
        return np.asarray(rows, dtype=float)

    def profile_operation(self, op: OpInstance, runner: StandaloneRunner) -> OperationProfile:
        """Collect (and cache) the feature vector for one operation."""
        signature = op.signature
        if signature not in self._profiles:
            self._profiles[signature] = OperationProfile(
                signature=signature, features=self.collect_features(op, runner)
            )
        return self._profiles[signature]

    # -- training ------------------------------------------------------------------------

    def train(self, ops: Sequence[OpInstance], runner: StandaloneRunner) -> int:
        """Fit one regressor per prediction case from the training operations.

        Returns the number of training rows (unique signatures).
        """
        unique: dict[OpSignature, OpInstance] = {}
        for op in ops:
            unique.setdefault(op.signature, op)
        if len(unique) < 2:
            raise ValueError("need at least two distinct operation signatures to train")

        rows = []
        sweeps = []
        for op in unique.values():
            profile = self.profile_operation(op, runner)
            rows.append(profile.features)
            sweep = runner.sweep(op)
            sweeps.append({key: b.total for key, b in sweep.items()})
        X = self._scaler.fit_transform(np.vstack(rows))

        self._models = {}
        for case in self._prediction_cases():
            # Execution times span several orders of magnitude across
            # operations, so the regressors are fit in log-space (otherwise
            # the relative error of small operations dominates).
            y = np.log(np.array([sweep[case] for sweep in sweeps], dtype=float))
            model = self.regressor_factory()
            model.fit(X, y)
            self._models[case] = model
        self._trained = True
        return len(unique)

    # -- PerformanceModel interface ---------------------------------------------------------

    def knows(self, signature: OpSignature) -> bool:
        return self._trained and signature in self._profiles

    def predict(self, signature: OpSignature, threads: int, affinity: AffinityMode) -> float:
        if not self._trained:
            raise RuntimeError("the regression model has not been trained")
        profile = self._profiles.get(signature)
        if profile is None:
            raise KeyError(f"operation not profiled: {signature}")
        case = (threads, affinity)
        model = self._models.get(case)
        if model is None:
            # Snap to the nearest feasible case of the same affinity.
            counts = sorted(t for (t, a) in self._models if a is affinity)
            if not counts:
                raise KeyError(f"no model for affinity {affinity}")
            nearest = min(counts, key=lambda c: abs(c - threads))
            model = self._models[(nearest, affinity)]
        features = self._scaler.transform(profile.features.reshape(1, -1))
        log_prediction = float(model.predict(features)[0])
        # Clamp before exponentiating so a wild regressor cannot overflow.
        return float(np.exp(np.clip(log_prediction, -18.0, 3.0)))

    def predict_all(self, signature: OpSignature) -> dict[tuple[int, AffinityMode], float]:
        return {
            case: self.predict(signature, case[0], case[1]) for case in self._models
        }

    def best_configuration(self, signature: OpSignature) -> ConfigurationPrediction:
        predictions = self.predict_all(signature)
        (threads, affinity), time = min(predictions.items(), key=lambda kv: kv[1])
        return ConfigurationPrediction(threads=threads, affinity=affinity, predicted_time=time)

    def top_configurations(
        self, signature: OpSignature, count: int
    ) -> list[ConfigurationPrediction]:
        if count < 1:
            raise ValueError("count must be at least 1")
        predictions = self.predict_all(signature)
        ranked = sorted(predictions.items(), key=lambda kv: kv[1])[:count]
        return [
            ConfigurationPrediction(threads=t, affinity=a, predicted_time=time)
            for (t, a), time in ranked
        ]

    # -- evaluation (Table IV) -----------------------------------------------------------------

    def evaluate(
        self,
        test_ops: Iterable[OpInstance],
        runner: StandaloneRunner,
    ) -> PredictionAccuracy:
        """Accuracy over every prediction case of every test operation."""
        true_times: list[float] = []
        predicted: list[float] = []
        for op in test_ops:
            self.profile_operation(op, runner)
            sweep = runner.sweep(op)
            for case, breakdown in sweep.items():
                if case not in self._models:
                    continue
                true_times.append(breakdown.total)
                predicted.append(self.predict(op.signature, case[0], case[1]))
        return PredictionAccuracy.from_pairs(true_times, predicted)
