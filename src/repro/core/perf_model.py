"""Performance model interfaces shared by the hill-climbing and regression
models, plus the accuracy metric the paper reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.graph.op import OpSignature
from repro.hardware.affinity import AffinityMode
from repro.utils.stats import paper_accuracy, r_squared


@dataclass(frozen=True)
class ConfigurationPrediction:
    """Predicted execution time of one (threads, affinity) configuration."""

    threads: int
    affinity: AffinityMode
    predicted_time: float

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("threads must be at least 1")
        if self.predicted_time < 0:
            raise ValueError("predicted_time must be non-negative")


@runtime_checkable
class PerformanceModel(Protocol):
    """What the runtime scheduler needs from a performance model.

    Both the hill-climbing model (Section III-C) and the regression model
    (Section III-B) implement this interface, as does the exhaustive
    oracle used to measure their accuracy.
    """

    def knows(self, signature: OpSignature) -> bool:
        """Whether the model has predictions for ``signature``."""

    def predict(
        self, signature: OpSignature, threads: int, affinity: AffinityMode
    ) -> float:
        """Predicted execution time of one configuration."""

    def best_configuration(self, signature: OpSignature) -> ConfigurationPrediction:
        """The configuration with the shortest predicted time."""

    def top_configurations(
        self, signature: OpSignature, count: int
    ) -> list[ConfigurationPrediction]:
        """The ``count`` most performant configurations (Strategy 3 candidates)."""


@dataclass(frozen=True)
class PredictionAccuracy:
    """Accuracy of a performance model against ground truth.

    ``accuracy`` is the paper's metric (1 - mean absolute relative error)
    and ``r2`` the coefficient of determination, both over a set of
    (configuration, true time, predicted time) observations.
    """

    accuracy: float
    r2: float
    num_observations: int

    @staticmethod
    def from_pairs(
        true_times: Sequence[float], predicted_times: Sequence[float]
    ) -> "PredictionAccuracy":
        if len(true_times) != len(predicted_times):
            raise ValueError("true and predicted sequences must have equal length")
        if len(true_times) < 2:
            raise ValueError("need at least two observations")
        return PredictionAccuracy(
            accuracy=paper_accuracy(true_times, predicted_times),
            r2=r_squared(true_times, predicted_times),
            num_observations=len(true_times),
        )
