"""The hill-climbing performance model (Section III-C).

For every operation signature (type + input shapes) the profiler runs the
operation standalone with an increasing number of threads — starting from
the smallest feasible count and stepping by the *interval* ``x`` — once
per affinity (cache sharing / no cache sharing), and stops as soon as the
measured time increases (or the chip is full).  The measured samples give

* the best configuration found (the runtime's Strategy 1 choice), and
* a piecewise-linear interpolation that predicts the execution time of
  every *untested* configuration (what Strategy 3 needs to evaluate
  co-running candidates).

The model is architecture-independent and needs no knowledge of the
operation's internals, which is why the paper prefers it over the
regression model.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.perf_model import ConfigurationPrediction, PredictionAccuracy
from repro.execsim.standalone import StandaloneRunner
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance, OpSignature
from repro.hardware.affinity import AffinityMode, ThreadPlacement
from repro.hardware.topology import Machine
from repro.sweep.executor import get_default_executor
from repro.sweep.tasks import op_sweep_totals


@dataclass
class HillClimbingProfile:
    """Profiling outcome for one operation signature."""

    signature: OpSignature
    #: Measured times of the sampled configurations.
    samples: dict[tuple[int, AffinityMode], float] = field(default_factory=dict)
    #: Number of standalone measurements taken.
    measurements: int = 0
    #: Lazily-built per-affinity ``(counts, times)`` arrays for bisect-based
    #: interpolation; rebuilt whenever the sample count changes.
    _tables: dict[AffinityMode, tuple[tuple[int, ...], tuple[float, ...]]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _tables_stamp: int = field(default=-1, init=False, repr=False, compare=False)

    def best(self) -> ConfigurationPrediction:
        if not self.samples:
            raise ValueError(f"no samples collected for {self.signature}")
        (threads, affinity), time = min(self.samples.items(), key=lambda kv: kv[1])
        return ConfigurationPrediction(threads=threads, affinity=affinity, predicted_time=time)

    def sampled_counts(self, affinity: AffinityMode) -> list[int]:
        return sorted(t for (t, a) in self.samples if a is affinity)

    def invalidate_tables(self) -> None:
        """Drop the cached interpolation tables.

        Call after *replacing* an existing sample's value in place;
        adding or removing samples is detected automatically (the cache
        is stamped with the sample count).
        """
        self._tables.clear()
        self._tables_stamp = -1

    def interpolation_table(
        self, affinity: AffinityMode
    ) -> tuple[tuple[int, ...], tuple[float, ...]]:
        """Sorted ``(counts, times)`` arrays of the samples for ``affinity``.

        The prediction hot path binary-searches these instead of
        rebuilding a dict and linearly scanning for a bracketing interval
        on every call.  Tables rebuild whenever the sample *count*
        changes (the way profiling mutates ``samples``); code that
        overwrites an existing sample's value must call
        :meth:`invalidate_tables`.
        """
        if self._tables_stamp != len(self.samples):
            self._tables.clear()
            self._tables_stamp = len(self.samples)
        table = self._tables.get(affinity)
        if table is None:
            counts = tuple(sorted(t for (t, a) in self.samples if a is affinity))
            times = tuple(self.samples[(c, affinity)] for c in counts)
            table = (counts, times)
            self._tables[affinity] = table
        return table


class HillClimbingModel:
    """Performance model built by hill climbing plus linear interpolation."""

    def __init__(
        self,
        machine: Machine,
        interval: int = 4,
        *,
        stop_tolerance: float = 0.02,
    ) -> None:
        if interval < 1:
            raise ValueError("interval must be at least 1")
        if stop_tolerance < 0:
            raise ValueError("stop_tolerance must be non-negative")
        self.machine = machine
        self.interval = interval
        #: Relative increase that counts as "the execution time increased";
        #: a small tolerance keeps measurement noise from stopping the climb
        #: prematurely.
        self.stop_tolerance = stop_tolerance
        self._profiles: dict[OpSignature, HillClimbingProfile] = {}
        self._cases: list[tuple[int, AffinityMode]] | None = None

    # -- profiling -----------------------------------------------------------------

    def _ladder(self, affinity: AffinityMode) -> list[int]:
        """The thread counts the hill climb may visit for ``affinity``."""
        feasible = ThreadPlacement.feasible_thread_counts(affinity, self.machine.topology)
        start = feasible[0]
        ladder = [c for c in feasible if (c - start) % self.interval == 0]
        if ladder[-1] != feasible[-1]:
            ladder.append(feasible[-1])
        return ladder

    def profile_operation(self, op: OpInstance, runner: StandaloneRunner) -> HillClimbingProfile:
        """Run the hill climb for one operation (both affinities)."""
        signature = op.signature
        if signature in self._profiles:
            return self._profiles[signature]
        profile = HillClimbingProfile(signature=signature)
        for affinity in (AffinityMode.SPREAD, AffinityMode.SHARED):
            previous: float | None = None
            for threads in self._ladder(affinity):
                measured = runner.run(op, threads, affinity)
                profile.samples[(threads, affinity)] = measured
                profile.measurements += 1
                if previous is not None and measured > previous * (1.0 + self.stop_tolerance):
                    # First increase: the previous count was the local optimum
                    # for this affinity — stop climbing (Section III-C).
                    break
                previous = min(measured, previous) if previous is not None else measured
        self._profiles[signature] = profile
        return profile

    def profile_graph(
        self,
        graph: DataflowGraph,
        runner: StandaloneRunner,
        *,
        only_tunable: bool = True,
    ) -> int:
        """Profile every unique signature in ``graph``.

        Returns the number of distinct signatures profiled.  Untunable
        (Eigen-implemented) operations are skipped when ``only_tunable``
        because the runtime does not change their concurrency.
        """
        count = 0
        for op in graph:
            if only_tunable and not op.is_tunable:
                continue
            if op.signature in self._profiles:
                continue
            self.profile_operation(op, runner)
            count += 1
        return count

    def add_profile(self, profile: HillClimbingProfile) -> None:
        """Insert an externally-built profile (useful for tests)."""
        self._profiles[profile.signature] = profile

    # -- bookkeeping ------------------------------------------------------------------

    @property
    def signatures(self) -> tuple[OpSignature, ...]:
        return tuple(self._profiles)

    def profile_for(self, signature: OpSignature) -> HillClimbingProfile:
        return self._profiles[signature]

    def knows(self, signature: OpSignature) -> bool:
        return signature in self._profiles

    def total_measurements(self) -> int:
        return sum(p.measurements for p in self._profiles.values())

    def profiling_steps_used(self) -> int:
        """Upper bound on the number of profiling *training steps* needed.

        The paper runs the ops serially inside N profiling steps, one
        (threads, affinity) sample case per step, so N is bounded by the
        longest ladder: at most ``C / x * 2`` where ``C`` is the core count.
        """
        spread = len(self._ladder(AffinityMode.SPREAD))
        shared = len(self._ladder(AffinityMode.SHARED))
        return spread + shared

    # -- prediction ----------------------------------------------------------------------

    def predict(self, signature: OpSignature, threads: int, affinity: AffinityMode) -> float:
        """Predicted execution time via piecewise-linear interpolation.

        Configurations beyond the last sampled count are extrapolated from
        the last two samples of that affinity (the climb stopped there
        because times started rising).
        """
        if threads < 1:
            raise ValueError("threads must be at least 1")
        profile = self._profiles.get(signature)
        if profile is None:
            raise KeyError(f"signature not profiled: {signature}")
        counts, times = profile.interpolation_table(affinity)
        if not counts:
            raise KeyError(f"no samples for affinity {affinity} of {signature}")
        index = bisect_left(counts, threads)
        if index < len(counts) and counts[index] == threads:
            return times[index]
        if index == 0:  # below the smallest sampled count
            return times[0]
        if index == len(counts):  # beyond the last sampled count
            if len(counts) == 1:
                return times[0]
            # Extrapolate past the stopping point with the average slope of
            # the last few samples, clamped to a plausible band: beyond the
            # optimum the true curve rises slowly, so a noisy two-point slope
            # must not be allowed to explode.
            first = -3 if len(counts) >= 3 else -2
            slope = (times[-1] - times[first]) / (counts[-1] - counts[first])
            slope = max(slope, 0.0)
            last = times[-1]
            extrapolated = last + slope * (threads - counts[-1])
            return float(min(max(extrapolated, last * 0.8), last * 2.5))
        # interior: counts[index - 1] < threads < counts[index]
        lower, upper = counts[index - 1], counts[index]
        weight = (threads - lower) / (upper - lower)
        return times[index - 1] * (1 - weight) + times[index] * weight

    def _all_cases(self) -> list[tuple[int, AffinityMode]]:
        if self._cases is None:
            cases: list[tuple[int, AffinityMode]] = []
            for affinity in (AffinityMode.SPREAD, AffinityMode.SHARED):
                for count in ThreadPlacement.feasible_thread_counts(
                    affinity, self.machine.topology
                ):
                    cases.append((count, affinity))
            self._cases = cases
        return self._cases

    def predict_all(self, signature: OpSignature) -> dict[tuple[int, AffinityMode], float]:
        """Predictions for every feasible (threads, affinity) case."""
        return {
            (threads, affinity): self.predict(signature, threads, affinity)
            for threads, affinity in self._all_cases()
        }

    def best_configuration(self, signature: OpSignature) -> ConfigurationPrediction:
        """The best *measured* configuration (the hill climb's answer)."""
        return self._profiles[signature].best()

    def top_configurations(
        self, signature: OpSignature, count: int
    ) -> list[ConfigurationPrediction]:
        """The ``count`` most performant configurations by predicted time."""
        if count < 1:
            raise ValueError("count must be at least 1")
        predictions = self.predict_all(signature)
        ranked = sorted(predictions.items(), key=lambda kv: kv[1])[:count]
        return [
            ConfigurationPrediction(threads=t, affinity=a, predicted_time=time)
            for (t, a), time in ranked
        ]

    # -- accuracy -------------------------------------------------------------------------

    def accuracy_against(
        self,
        ground_truth: Mapping[OpSignature, Mapping[tuple[int, AffinityMode], float]],
        *,
        untested_only: bool = True,
    ) -> PredictionAccuracy:
        """Prediction accuracy against exhaustive ground-truth sweeps.

        ``untested_only`` restricts the evaluation to configurations the
        hill climb did *not* measure (the paper evaluates how well the
        interpolation predicts unseen cases).
        """
        true_times: list[float] = []
        predicted: list[float] = []
        for signature, truth in ground_truth.items():
            if not self.knows(signature):
                continue
            profile = self._profiles[signature]
            for (threads, affinity), true_time in truth.items():
                if untested_only and (threads, affinity) in profile.samples:
                    continue
                try:
                    predicted_time = self.predict(signature, threads, affinity)
                except KeyError:
                    continue
                true_times.append(true_time)
                predicted.append(predicted_time)
        return PredictionAccuracy.from_pairs(true_times, predicted)


def ground_truth_sweeps(
    ops: Iterable[OpInstance],
    runner: StandaloneRunner,
    *,
    executor=None,
) -> dict[OpSignature, dict[tuple[int, AffinityMode], float]]:
    """Exhaustive noise-free sweeps for a set of operations (per signature).

    The per-signature sweeps are independent, so they fan out over the
    sweep engine (and its cross-run cache); results are assembled in
    first-encounter order, identical to the original serial loop.
    """
    executor = executor or get_default_executor()
    pending: dict[OpSignature, OpInstance] = {}
    for op in ops:
        if op.signature not in pending:
            pending[op.signature] = op
    signatures = list(pending)
    totals = executor.map(
        op_sweep_totals,
        [
            (runner.characteristics(pending[signature]), runner.machine)
            for signature in signatures
        ],
    )
    return dict(zip(signatures, totals))
