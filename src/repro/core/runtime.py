"""End-to-end runtime: profiling steps, performance model, scheduled steps.

This is the workflow of Fig. 2 in the paper: the first few training steps
profile the operations (hill climbing), the performance model is built
from those measurements, and every following step is executed by the
scheduling strategies.  Because every training step of an NN model has
the same operations and dependencies, one simulated "scheduled step" is
representative of all remaining steps — exactly the property the paper
relies on for its evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.manual_opt import ManualOptimizer, ManualSearchResult
from repro.baselines.tf_default import recommended_policy
from repro.core.config import RuntimeConfig
from repro.core.hill_climbing import HillClimbingModel
from repro.core.interference import InterferenceTracker
from repro.core.scheduler import RuntimeSchedulerPolicy
from repro.execsim.simulator import StepResult, StepSimulator
from repro.execsim.standalone import StandaloneRunner
from repro.graph.dataflow import DataflowGraph
from repro.hardware.topology import Machine
from repro.ops.registry import OpRegistry


@dataclass
class TrainingReport:
    """Outcome of running a (simulated) training workload with the runtime."""

    graph_name: str
    config_label: str
    step_time: float
    recommendation_time: float
    profiling_signatures: int
    profiling_measurements: int
    step_result: StepResult
    recommendation_result: StepResult

    @property
    def speedup_vs_recommendation(self) -> float:
        """Speedup over the TensorFlow-recommended configuration."""
        if self.step_time <= 0:
            raise ValueError("step_time must be positive")
        return self.recommendation_time / self.step_time

    @property
    def average_corunning(self) -> float:
        return self.step_result.trace.average_corunning()


@dataclass
class StrategyComparison:
    """Step times of the ablation ladder the paper reports in Fig. 3."""

    graph_name: str
    recommendation: float
    strategies_1_2: float
    strategies_1_2_3: float
    all_strategies: float
    manual: ManualSearchResult | None = None
    traces: dict[str, StepResult] = field(default_factory=dict)

    def speedups_vs_recommendation(self) -> dict[str, float]:
        """Speedups of each configuration relative to the recommendation."""
        out = {
            "recommendation": 1.0,
            "strategies_1_2": self.recommendation / self.strategies_1_2,
            "strategies_1_2_3": self.recommendation / self.strategies_1_2_3,
            "all_strategies": self.recommendation / self.all_strategies,
        }
        if self.manual is not None:
            out["manual"] = self.recommendation / self.manual.best_time
        return out

    def incremental_speedups(self) -> dict[str, float]:
        """The per-strategy increments of Fig. 3a-c: each stage normalised by
        the previous one."""
        return {
            "strategies_1_2_vs_recommendation": self.recommendation / self.strategies_1_2,
            "strategy_3_vs_strategies_1_2": self.strategies_1_2 / self.strategies_1_2_3,
            "strategy_4_vs_strategy_3": self.strategies_1_2_3 / self.all_strategies,
        }


class TrainingRuntime:
    """Profile a workload, build the performance model and schedule steps."""

    def __init__(
        self,
        machine: Machine,
        config: RuntimeConfig | None = None,
        *,
        registry: OpRegistry | None = None,
    ) -> None:
        self.machine = machine
        self.config = config or RuntimeConfig()
        self.registry = registry
        self.simulator = StepSimulator(machine, registry=registry, seed=self.config.seed)

    # -- profiling ---------------------------------------------------------------------

    def profile(self, graph: DataflowGraph) -> HillClimbingModel:
        """Run the hill-climbing profiling steps for every signature in ``graph``."""
        runner = StandaloneRunner(
            self.machine,
            registry=self.registry,
            noise_sigma=self.config.profiling_noise_sigma,
            seed=self.config.seed,
        )
        model = HillClimbingModel(self.machine, interval=self.config.hill_climbing_interval)
        model.profile_graph(graph, runner)
        return model

    # -- scheduled execution ------------------------------------------------------------

    def build_policy(
        self,
        model: HillClimbingModel,
        *,
        interference: InterferenceTracker | None = None,
    ) -> RuntimeSchedulerPolicy:
        return RuntimeSchedulerPolicy(
            model,
            self.config,
            interference=interference,
        )

    def run(self, graph: DataflowGraph, *, num_steps: int = 1) -> TrainingReport:
        """Profile ``graph`` and execute ``num_steps`` scheduled steps.

        Training steps are identical in structure, so the report carries
        the (representative) last step's result; the interference tracker
        still learns across steps, as in the paper.
        """
        if num_steps < 1:
            raise ValueError("num_steps must be at least 1")
        model = self.profile(graph)
        interference = InterferenceTracker(threshold=self.config.interference_threshold)
        policy = self.build_policy(model, interference=interference)

        result: StepResult | None = None
        for step in range(num_steps):
            result = self.simulator.run_step(graph, policy, step_name=f"step-{step}")
        assert result is not None

        recommendation = self.simulator.run_step(
            graph, recommended_policy(self.machine), step_name="recommendation"
        )
        return TrainingReport(
            graph_name=graph.name,
            config_label=self.config.label,
            step_time=result.step_time,
            recommendation_time=recommendation.step_time,
            profiling_signatures=len(model.signatures),
            profiling_measurements=model.total_measurements(),
            step_result=result,
            recommendation_result=recommendation,
        )

    # -- ablation (Fig. 3) -----------------------------------------------------------------

    def compare_strategies(
        self,
        graph: DataflowGraph,
        *,
        include_manual: bool = False,
        manual_optimizer: ManualOptimizer | None = None,
    ) -> StrategyComparison:
        """Run the recommendation, S1+2, S1+2+3 and the full runtime on one step."""
        model = self.profile(graph)
        traces: dict[str, StepResult] = {}

        recommendation = self.simulator.run_step(
            graph, recommended_policy(self.machine), step_name="recommendation"
        )
        traces["recommendation"] = recommendation

        def run_with(config: RuntimeConfig, label: str) -> StepResult:
            policy = RuntimeSchedulerPolicy(model, config, label=label)
            outcome = self.simulator.run_step(graph, policy, step_name=label)
            traces[label] = outcome
            return outcome

        s12 = run_with(RuntimeConfig.strategies_1_2(), "strategies_1_2")
        s123 = run_with(RuntimeConfig.strategies_1_2_3(), "strategies_1_2_3")
        full = run_with(RuntimeConfig.all_strategies(), "all_strategies")

        manual: ManualSearchResult | None = None
        if include_manual:
            optimizer = manual_optimizer or ManualOptimizer(self.machine)
            manual = optimizer.search(graph, simulator=self.simulator)

        return StrategyComparison(
            graph_name=graph.name,
            recommendation=recommendation.step_time,
            strategies_1_2=s12.step_time,
            strategies_1_2_3=s123.step_time,
            all_strategies=full.step_time,
            manual=manual,
            traces=traces,
        )
