"""Co-run interference tracking (Section III-D, Discussion).

The performance model predicts each operation's time in isolation; when
operations co-run, contention can make them slower than predicted.  The
runtime records pairings whose observed slowdown exceeds a threshold and
avoids co-running them again in later training steps.

The tracker is generic over *what* is paired: keys are any hashable
values.  The single-machine runtime keys it by operation **type**
(``"Conv2DBackpropFilter"`` x ``"Conv2DBackpropInput"``); the fleet
scheduler (:mod:`repro.fleet`) keys the very same class by **workload
name** (``"resnet50"`` x ``"dcgan"``) to steer job placement across
machines.  :meth:`snapshot` / :meth:`merge` let independent trackers —
one per fleet machine — share what they learn.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable

#: Default cap on the per-pair observation history.  Long co-run
#: simulations (fleets replay thousands of steps) would otherwise grow
#: ``_observations`` without bound; the blacklist only ever needs the
#: threshold crossing, and diagnostics only the recent window.
DEFAULT_HISTORY = 128

Key = Hashable
PairKey = tuple


def _pair_key(a: Key, b: Key) -> PairKey:
    """Canonical unordered pair for any hashable keys.

    Natural ordering is only trusted when it actually decides: partially
    ordered types (frozensets, NaN) can answer False to both ``a <= b``
    and ``b <= a``, which would make the key asymmetric.  Everything
    else canonicalises by (type name, repr), which is total.
    """
    try:
        if a <= b:  # type: ignore[operator]
            return (a, b)
        if b <= a:  # type: ignore[operator]
            return (b, a)
    except TypeError:
        pass
    ra, rb = (type(a).__name__, repr(a)), (type(b).__name__, repr(b))
    return (a, b) if ra <= rb else (b, a)


@dataclass(frozen=True)
class InterferenceSnapshot:
    """Immutable, picklable export of one tracker's learned state.

    Produced by :meth:`InterferenceTracker.snapshot` and consumed by
    :meth:`InterferenceTracker.merge` — the fleet layer uses it to pool
    the pairings each machine observed into one shared tracker.
    """

    observations: tuple[tuple[PairKey, tuple[float, ...]], ...]
    blacklist: tuple[PairKey, ...]

    @property
    def num_observations(self) -> int:
        return sum(len(values) for _, values in self.observations)


@dataclass
class InterferenceTracker:
    """Remembers which pairs of keys co-run badly.

    Keys are *kinds*, not instances: if two ``Conv2DBackpropFilter``
    instances (or two ``resnet50`` jobs) thrash each other, later
    pairings of the same kinds are assumed to thrash as well.
    """

    threshold: float = 0.5
    #: Per-pair observation history cap (``None`` keeps everything, which
    #: is only safe for short runs).
    history: int | None = DEFAULT_HISTORY
    _observations: dict[PairKey, deque[float]] = field(default_factory=dict)
    _blacklist: set[PairKey] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.history is not None and self.history < 1:
            raise ValueError("history must be positive (or None for unbounded)")

    def record(self, key_a: Key, key_b: Key, slowdown: float) -> None:
        """Record the observed relative slowdown of a co-run pairing.

        ``slowdown`` is (observed time / predicted isolated time) - 1 for
        either member of the pair.
        """
        if slowdown < 0:
            slowdown = 0.0
        key = _pair_key(key_a, key_b)
        history = self._observations.get(key)
        if history is None:
            history = deque(maxlen=self.history)
            self._observations[key] = history
        history.append(slowdown)
        if slowdown > self.threshold:
            self._blacklist.add(key)

    def history_for(self, key_a: Key, key_b: Key) -> "deque[float]":
        """The mutable observation history of a pairing (created if missing).

        A bulk-recording hook for hot loops (the fleet simulator's round
        compression): resolving the canonical pair key and the deque once
        per stable co-run segment, then appending per round, is
        equivalent to calling :meth:`record` per round — minus the
        per-call key canonicalisation.  Callers are responsible for
        clamping negative slowdowns to 0.0 and for
        :meth:`mark_blacklisted` when an observation crosses the
        threshold, exactly as :meth:`record` would.
        """
        key = _pair_key(key_a, key_b)
        history = self._observations.get(key)
        if history is None:
            history = deque(maxlen=self.history)
            self._observations[key] = history
        return history

    def mark_blacklisted(self, key_a: Key, key_b: Key) -> None:
        """Blacklist a pairing directly (see :meth:`history_for`)."""
        self._blacklist.add(_pair_key(key_a, key_b))

    def allowed(self, key_a: Key, key_b: Key) -> bool:
        """Whether the runtime may co-run these kinds."""
        return _pair_key(key_a, key_b) not in self._blacklist

    def allowed_with_all(self, key: Key, running_keys: Iterable[Key]) -> bool:
        """Whether ``key`` may co-run with every kind in ``running_keys``."""
        return all(self.allowed(key, other) for other in running_keys)

    def blacklisted_pairs(self) -> tuple[PairKey, ...]:
        return tuple(sorted(self._blacklist, key=repr))

    def observations(self, key_a: Key, key_b: Key) -> tuple[float, ...]:
        return tuple(self._observations.get(_pair_key(key_a, key_b), ()))

    def mean_slowdown(self, key_a: Key, key_b: Key) -> float | None:
        """Mean observed slowdown of a pairing (``None`` when unobserved)."""
        history = self._observations.get(_pair_key(key_a, key_b))
        if not history:
            return None
        return sum(history) / len(history)

    def clear(self) -> None:
        self._observations.clear()
        self._blacklist.clear()

    # -- sharing across trackers ---------------------------------------------------

    def snapshot(self) -> InterferenceSnapshot:
        """Freeze the current state into an immutable, picklable value.

        Pairs with zero recorded observations are omitted: they carry no
        information, and whether one exists is an artifact of *how* a
        caller recorded (:meth:`history_for` pre-creates the history, so
        a co-run segment aborted by a fault before its first round would
        otherwise leave a spurious empty entry behind).
        """
        return InterferenceSnapshot(
            observations=tuple(
                sorted(
                    (
                        (key, tuple(values))
                        for key, values in self._observations.items()
                        if values
                    ),
                    key=lambda kv: repr(kv[0]),
                )
            ),
            blacklist=tuple(sorted(self._blacklist, key=repr)),
        )

    def merge(self, other: "InterferenceTracker | InterferenceSnapshot") -> None:
        """Fold another tracker's (or snapshot's) observations into this one.

        Histories are appended under this tracker's own cap; blacklist
        entries are unioned (a pairing one machine found harmful stays
        harmful fleet-wide).  Merging is idempotent for the blacklist but
        not for histories, so callers merging repeatedly should merge
        *deltas* or accept duplicated observations inside the cap window.
        """
        snapshot = other.snapshot() if isinstance(other, InterferenceTracker) else other
        for key, values in snapshot.observations:
            history = self._observations.get(key)
            if history is None:
                history = deque(maxlen=self.history)
                self._observations[key] = history
            history.extend(values)
        self._blacklist.update(snapshot.blacklist)
