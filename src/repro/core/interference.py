"""Co-run interference tracking (Section III-D, Discussion).

The performance model predicts each operation's time in isolation; when
operations co-run, contention can make them slower than predicted.  The
runtime records pairings whose observed slowdown exceeds a threshold and
avoids co-running them again in later training steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


def _pair_key(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass
class InterferenceTracker:
    """Remembers which operation-type pairs co-run badly.

    Keys are operation *types* (not instances): if two ``Conv2DBackpropFilter``
    instances thrash each other, later instances of the same pairing are
    assumed to thrash as well.
    """

    threshold: float = 0.5
    _observations: dict[tuple[str, str], list[float]] = field(default_factory=dict)
    _blacklist: set[tuple[str, str]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")

    def record(self, op_type_a: str, op_type_b: str, slowdown: float) -> None:
        """Record the observed relative slowdown of a co-run pairing.

        ``slowdown`` is (observed time / predicted isolated time) - 1 for
        either member of the pair.
        """
        if slowdown < 0:
            slowdown = 0.0
        key = _pair_key(op_type_a, op_type_b)
        self._observations.setdefault(key, []).append(slowdown)
        if slowdown > self.threshold:
            self._blacklist.add(key)

    def allowed(self, op_type_a: str, op_type_b: str) -> bool:
        """Whether the runtime may co-run these operation types."""
        return _pair_key(op_type_a, op_type_b) not in self._blacklist

    def allowed_with_all(self, op_type: str, running_types: Iterable[str]) -> bool:
        """Whether ``op_type`` may co-run with every type in ``running_types``."""
        return all(self.allowed(op_type, other) for other in running_types)

    def blacklisted_pairs(self) -> tuple[tuple[str, str], ...]:
        return tuple(sorted(self._blacklist))

    def observations(self, op_type_a: str, op_type_b: str) -> tuple[float, ...]:
        return tuple(self._observations.get(_pair_key(op_type_a, op_type_b), ()))

    def clear(self) -> None:
        self._observations.clear()
        self._blacklist.clear()
