"""The runtime scheduling policy implementing Strategies 1-4 (Section III-D).

The policy plugs into :class:`repro.execsim.simulator.StepSimulator` (the
role the modified TensorFlow executor plays in the paper) and decides, at
every scheduling event, which ready operations to launch, with how many
threads, under which affinity and on which placement:

* **Strategy 1** — per-operation intra-op parallelism from the performance
  model;
* **Strategy 2** — one stable thread count per operation *type*, taken
  from its largest-input instance, to avoid thread-pool reconfiguration;
* **Strategy 3** — co-run ready operations on disjoint core partitions
  when one of their top-k configurations fits the idle cores without
  outlasting the ongoing operations;
* **Strategy 4** — pack small operations onto free hyper-thread slots when
  a core-filling operation owns every physical core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RuntimeConfig
from repro.core.interference import InterferenceTracker
from repro.core.perf_model import ConfigurationPrediction, PerformanceModel
from repro.execsim.simulator import (
    LaunchRequest,
    PlacementKind,
    SchedulingContext,
)
from repro.graph.dataflow import DataflowGraph
from repro.graph.op import OpInstance
from repro.graph.traversal import topological_order
from repro.hardware.affinity import AffinityMode
from repro.hardware.topology import Machine


@dataclass(frozen=True)
class _Assignment:
    """The thread count / affinity the runtime intends for an operation."""

    threads: int
    affinity: AffinityMode
    predicted_time: float


class RuntimeSchedulerPolicy:
    """Performance-model-driven scheduling policy (the paper's runtime)."""

    def __init__(
        self,
        model: PerformanceModel,
        config: RuntimeConfig | None = None,
        *,
        interference: InterferenceTracker | None = None,
        label: str | None = None,
    ) -> None:
        self.model = model
        self.config = config or RuntimeConfig()
        self.interference = interference or InterferenceTracker(
            threshold=self.config.interference_threshold
        )
        self.name = label or f"runtime[{self.config.label}]"
        self._machine: Machine | None = None
        self._graph: DataflowGraph | None = None
        self._fifo_rank: dict[str, int] = {}
        self._assignments: dict[str, _Assignment] = {}

    # -- step preparation ------------------------------------------------------------

    def on_step_begin(self, graph: DataflowGraph, machine: Machine) -> None:
        self._machine = machine
        self._graph = graph
        self._fifo_rank = {name: i for i, name in enumerate(topological_order(graph))}
        self._assignments = self._compute_assignments(graph, machine)

    def _default_assignment(self, machine: Machine) -> _Assignment:
        return _Assignment(
            threads=machine.topology.num_cores,
            affinity=AffinityMode.SHARED,
            predicted_time=float("inf"),
        )

    def _best_for(self, op: OpInstance) -> ConfigurationPrediction | None:
        if not self.model.knows(op.signature):
            return None
        return self.model.best_configuration(op.signature)

    def _compute_assignments(
        self, graph: DataflowGraph, machine: Machine
    ) -> dict[str, _Assignment]:
        """Per-operation thread assignments from Strategies 1 and 2."""
        config = self.config
        assignments: dict[str, _Assignment] = {}

        # Strategy 2: one configuration per op type, from the largest-input
        # instance (the most time-consuming one).
        stable: dict[str, _Assignment] = {}
        if config.strategy2_stable_concurrency:
            largest: dict[str, OpInstance] = {}
            for op in graph:
                if not op.is_tunable:
                    continue
                current = largest.get(op.op_type)
                if current is None or op.total_input_elements > current.total_input_elements:
                    largest[op.op_type] = op
            for op_type, op in largest.items():
                best = self._best_for(op)
                if best is None:
                    stable[op_type] = self._default_assignment(machine)
                else:
                    stable[op_type] = _Assignment(
                        threads=best.threads,
                        affinity=best.affinity,
                        predicted_time=best.predicted_time,
                    )

        for op in graph:
            if not op.is_tunable or not config.strategy1_per_op_concurrency:
                assignments[op.name] = self._default_assignment(machine)
                continue
            if config.strategy2_stable_concurrency and op.op_type in stable:
                base = stable[op.op_type]
                # Predicted time is still instance-specific even though the
                # thread count is shared across instances of the type.
                predicted = self._predict_or_inf(op, base.threads, base.affinity)
                assignments[op.name] = _Assignment(
                    threads=base.threads,
                    affinity=base.affinity,
                    predicted_time=predicted,
                )
                continue
            best = self._best_for(op)
            if best is None:
                assignments[op.name] = self._default_assignment(machine)
            else:
                assignments[op.name] = _Assignment(
                    threads=best.threads,
                    affinity=best.affinity,
                    predicted_time=best.predicted_time,
                )
        return assignments

    def _predict_or_inf(self, op: OpInstance, threads: int, affinity: AffinityMode) -> float:
        if not self.model.knows(op.signature):
            return float("inf")
        try:
            return self.model.predict(op.signature, threads, affinity)
        except KeyError:
            return float("inf")

    def assignment_for(self, op_name: str) -> _Assignment:
        """The Strategy 1/2 assignment of an operation (for inspection/tests)."""
        return self._assignments[op_name]

    # -- candidate generation (Strategy 3) ----------------------------------------------

    def _candidates(self, op: OpInstance) -> list[ConfigurationPrediction]:
        """Top-k configurations for ``op``, reconciled with Strategy 2."""
        config = self.config
        assignment = self._assignments[op.name]
        if not self.model.knows(op.signature):
            return [
                ConfigurationPrediction(
                    threads=assignment.threads,
                    affinity=assignment.affinity,
                    predicted_time=assignment.predicted_time,
                )
            ]
        top = self.model.top_configurations(op.signature, config.corun_candidates)
        if not config.strategy2_stable_concurrency:
            return top
        reconciled: list[ConfigurationPrediction] = []
        seen: set[tuple[int, AffinityMode]] = set()
        for candidate in top:
            if abs(candidate.threads - assignment.threads) > config.stable_concurrency_tolerance:
                candidate = ConfigurationPrediction(
                    threads=assignment.threads,
                    affinity=assignment.affinity,
                    predicted_time=self._predict_or_inf(
                        op, assignment.threads, assignment.affinity
                    ),
                )
            key = (candidate.threads, candidate.affinity)
            if key not in seen:
                seen.add(key)
                reconciled.append(candidate)
        return reconciled

    # -- launch selection -------------------------------------------------------------------

    def select_launches(self, context: SchedulingContext) -> list[LaunchRequest]:
        if not context.ready or self._machine is None:
            return []
        if not self.config.strategy3_corun:
            return self._select_serial(context)
        if context.free_cores > 0:
            request = self._select_corun(context)
            return [request] if request is not None else []
        if self.config.strategy4_hyperthreading:
            request = self._select_hyperthread(context)
            return [request] if request is not None else []
        return []

    # Strategy 3 disabled: behave like inter-op parallelism of one, but with
    # per-op thread counts (Strategies 1/2 only — Fig. 3a).
    def _select_serial(self, context: SchedulingContext) -> list[LaunchRequest]:
        if context.running:
            return []
        ready = sorted(context.ready, key=lambda op: self._fifo_rank.get(op.name, 0))
        op = ready[0]
        assignment = self._assignments[op.name]
        threads = min(assignment.threads, max(1, context.free_cores))
        return [
            LaunchRequest(
                op_name=op.name,
                threads=threads,
                affinity=assignment.affinity,
                placement=PlacementKind.DEDICATED,
            )
        ]

    def _select_corun(self, context: SchedulingContext) -> LaunchRequest | None:
        """Strategy 3: fill idle cores without decreasing system throughput."""
        free = context.free_cores
        running_types = [r.op.op_type for r in context.running]
        longest_remaining = max(
            (r.predicted_finish - context.time for r in context.running), default=None
        )

        # Rank ready operations by how time-consuming they are (their best
        # predicted time), most expensive first.
        def weight(op: OpInstance) -> float:
            assignment = self._assignments[op.name]
            if assignment.predicted_time == float("inf"):
                return float("inf")
            return assignment.predicted_time

        ready = sorted(
            context.ready,
            key=lambda op: (-weight(op) if weight(op) != float("inf") else float("-inf"),
                            self._fifo_rank.get(op.name, 0)),
        )

        if longest_remaining is None:
            # Idle machine: start the most time-consuming ready operation with
            # its assigned configuration.
            op = ready[0]
            assignment = self._assignments[op.name]
            return LaunchRequest(
                op_name=op.name,
                threads=min(assignment.threads, free),
                affinity=assignment.affinity,
                placement=PlacementKind.DEDICATED,
            )

        # Try to find an operation with a candidate that fits the idle cores
        # and does not outlast the ongoing operations.
        for op in ready:
            if not self.interference.allowed_with_all(op.op_type, running_types):
                continue
            fitting = [
                c
                for c in self._candidates(op)
                if c.threads <= free and c.predicted_time <= longest_remaining
            ]
            if not fitting:
                continue
            # Among fitting candidates prefer the one using the fewest threads:
            # it leaves idle cores for further co-running (the paper's example
            # picks 18 threads over 20 for exactly this reason).
            chosen = min(fitting, key=lambda c: (c.threads, c.predicted_time))
            return LaunchRequest(
                op_name=op.name,
                threads=chosen.threads,
                affinity=chosen.affinity,
                placement=PlacementKind.DEDICATED,
            )

        # Nothing fits without decreasing throughput: run the most
        # time-consuming ready operation on the idle cores anyway.
        for op in ready:
            if not self.interference.allowed_with_all(op.op_type, running_types):
                continue
            assignment = self._assignments[op.name]
            return LaunchRequest(
                op_name=op.name,
                threads=min(assignment.threads, free),
                affinity=assignment.affinity,
                placement=PlacementKind.DEDICATED,
            )
        return None

    def _select_hyperthread(self, context: SchedulingContext) -> LaunchRequest | None:
        """Strategy 4: pack a small ready operation onto free SMT slots."""
        if context.free_hyperthread_cores <= 0:
            return None
        if not (context.any_core_filling_op or context.free_cores == 0):
            return None
        running_types = [r.op.op_type for r in context.running]
        longest_remaining = max(
            (r.predicted_finish - context.time for r in context.running), default=0.0
        )

        def serial_time(op: OpInstance) -> float:
            return self._predict_or_inf(op, 1, AffinityMode.SPREAD)

        candidates = [
            op
            for op in context.ready
            if self.interference.allowed_with_all(op.op_type, running_types)
            and serial_time(op) != float("inf")
        ]
        if not candidates:
            return None
        # The smallest operation in the ready queue (shortest serial time).
        op = min(candidates, key=serial_time)
        assignment = self._assignments[op.name]
        threads = max(
            1,
            min(
                self.config.small_op_max_threads,
                assignment.threads,
                context.free_hyperthread_cores,
            ),
        )
        predicted = self._predict_or_inf(op, threads, assignment.affinity)
        # Hyper-thread slots run at roughly half speed (the sibling owns the
        # core), so be conservative about what still finishes "for free"
        # under the core-filling operation.
        if predicted * 2.0 > longest_remaining:
            return None
        return LaunchRequest(
            op_name=op.name,
            threads=threads,
            affinity=assignment.affinity,
            placement=PlacementKind.HYPERTHREAD,
        )
