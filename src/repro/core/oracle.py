"""Oracle performance model: the exhaustive, noise-free ground truth.

Used to measure the accuracy of the hill-climbing and regression models
(Tables IV and V) and as an upper bound for the scheduler ("what if the
runtime knew every operation's true time-vs-threads curve?").

The exhaustive sweeps are the oracle's only cost, so they run through
the sweep engine: :meth:`OraclePerformanceModel.observe_graph` fans the
per-signature sweeps out over a :class:`~repro.sweep.SweepExecutor`, and
every sweep is memoised by the executor's on-disk
:class:`~repro.sweep.SweepCache` across experiments and invocations.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.perf_model import ConfigurationPrediction
from repro.graph.op import OpInstance, OpSignature
from repro.hardware.affinity import AffinityMode
from repro.hardware.topology import Machine
from repro.ops.cost import characterize
from repro.ops.registry import OpRegistry
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.sweep.tasks import cached_call, op_sweep_totals


class OraclePerformanceModel:
    """Exact execution times from the analytic model, per signature."""

    def __init__(
        self,
        machine: Machine,
        *,
        registry: OpRegistry | None = None,
        sweep_cache=None,
    ) -> None:
        self.machine = machine
        self.registry = registry
        #: Optional :class:`repro.sweep.SweepCache` for single observe()
        #: calls; None computes in-process.  ``observe_graph`` uses its
        #: executor's cache instead.
        self.sweep_cache = sweep_cache
        self._sweeps: dict[OpSignature, dict[tuple[int, AffinityMode], float]] = {}
        #: Per-affinity sorted thread counts of each sweep, precomputed at
        #: observe time so the predict() fallback is a bisect instead of a
        #: per-miss sort (mirrors ``HillClimbingModel.predict``).
        self._sorted_counts: dict[OpSignature, dict[AffinityMode, tuple[int, ...]]] = {}

    def _install(self, signature: OpSignature, sweep: dict[tuple[int, AffinityMode], float]) -> None:
        self._sweeps[signature] = sweep
        by_affinity: dict[AffinityMode, list[int]] = {}
        for threads, affinity in sweep:
            by_affinity.setdefault(affinity, []).append(threads)
        self._sorted_counts[signature] = {
            affinity: tuple(sorted(counts)) for affinity, counts in by_affinity.items()
        }

    def observe(self, op: OpInstance) -> None:
        """Compute (and cache) the exhaustive sweep for ``op``'s signature."""
        signature = op.signature
        if signature in self._sweeps:
            return
        chars = characterize(op, self.registry)
        sweep = cached_call(self.sweep_cache, op_sweep_totals, chars, self.machine)
        self._install(signature, sweep)

    def observe_graph(self, graph, *, executor: SweepExecutor | None = None) -> None:
        """Sweep every new signature in ``graph``, fanned out over ``executor``."""
        executor = executor or get_default_executor()
        pending: dict[OpSignature, OpInstance] = {}
        for op in graph:
            if op.signature not in self._sweeps and op.signature not in pending:
                pending[op.signature] = op
        if not pending:
            return
        signatures = list(pending)
        sweeps = executor.map(
            op_sweep_totals,
            [(characterize(pending[s], self.registry), self.machine) for s in signatures],
        )
        for signature, sweep in zip(signatures, sweeps):
            self._install(signature, sweep)

    # -- PerformanceModel interface ------------------------------------------------

    def knows(self, signature: OpSignature) -> bool:
        return signature in self._sweeps

    def predict(self, signature: OpSignature, threads: int, affinity: AffinityMode) -> float:
        sweep = self._sweeps[signature]
        if (threads, affinity) in sweep:
            return sweep[(threads, affinity)]
        # Fall back to the nearest feasible thread count of that affinity
        # (binary search over the counts precomputed at observe time; ties
        # resolve to the smaller count, as the original linear scan did).
        counts = self._sorted_counts[signature].get(affinity, ())
        if not counts:
            raise KeyError(f"no data for affinity {affinity} of {signature}")
        index = bisect_left(counts, threads)
        if index == 0:
            nearest = counts[0]
        elif index == len(counts):
            nearest = counts[-1]
        else:
            lower, upper = counts[index - 1], counts[index]
            nearest = lower if threads - lower <= upper - threads else upper
        return sweep[(nearest, affinity)]

    def best_configuration(self, signature: OpSignature) -> ConfigurationPrediction:
        sweep = self._sweeps[signature]
        (threads, affinity), time = min(sweep.items(), key=lambda kv: kv[1])
        return ConfigurationPrediction(threads=threads, affinity=affinity, predicted_time=time)

    def top_configurations(
        self, signature: OpSignature, count: int
    ) -> list[ConfigurationPrediction]:
        if count < 1:
            raise ValueError("count must be at least 1")
        sweep = self._sweeps[signature]
        ranked = sorted(sweep.items(), key=lambda kv: kv[1])[:count]
        return [
            ConfigurationPrediction(threads=t, affinity=a, predicted_time=time)
            for (t, a), time in ranked
        ]

    def sweep(self, signature: OpSignature) -> dict[tuple[int, AffinityMode], float]:
        """The cached exhaustive sweep (a copy)."""
        return dict(self._sweeps[signature])
