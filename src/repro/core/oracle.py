"""Oracle performance model: the exhaustive, noise-free ground truth.

Used to measure the accuracy of the hill-climbing and regression models
(Tables IV and V) and as an upper bound for the scheduler ("what if the
runtime knew every operation's true time-vs-threads curve?").
"""

from __future__ import annotations

from repro.core.perf_model import ConfigurationPrediction
from repro.execsim.op_runtime import sweep_thread_counts
from repro.graph.op import OpInstance, OpSignature
from repro.hardware.affinity import AffinityMode
from repro.hardware.topology import Machine
from repro.ops.cost import characterize
from repro.ops.registry import OpRegistry


class OraclePerformanceModel:
    """Exact execution times from the analytic model, per signature."""

    def __init__(self, machine: Machine, *, registry: OpRegistry | None = None) -> None:
        self.machine = machine
        self.registry = registry
        self._sweeps: dict[OpSignature, dict[tuple[int, AffinityMode], float]] = {}

    def observe(self, op: OpInstance) -> None:
        """Compute (and cache) the exhaustive sweep for ``op``'s signature."""
        signature = op.signature
        if signature in self._sweeps:
            return
        chars = characterize(op, self.registry)
        sweep = sweep_thread_counts(chars, self.machine)
        self._sweeps[signature] = {key: b.total for key, b in sweep.items()}

    def observe_graph(self, graph) -> None:
        for op in graph:
            self.observe(op)

    # -- PerformanceModel interface ------------------------------------------------

    def knows(self, signature: OpSignature) -> bool:
        return signature in self._sweeps

    def predict(self, signature: OpSignature, threads: int, affinity: AffinityMode) -> float:
        sweep = self._sweeps[signature]
        if (threads, affinity) in sweep:
            return sweep[(threads, affinity)]
        # Fall back to the nearest feasible thread count of that affinity.
        counts = sorted(t for (t, a) in sweep if a is affinity)
        if not counts:
            raise KeyError(f"no data for affinity {affinity} of {signature}")
        nearest = min(counts, key=lambda c: abs(c - threads))
        return sweep[(nearest, affinity)]

    def best_configuration(self, signature: OpSignature) -> ConfigurationPrediction:
        sweep = self._sweeps[signature]
        (threads, affinity), time = min(sweep.items(), key=lambda kv: kv[1])
        return ConfigurationPrediction(threads=threads, affinity=affinity, predicted_time=time)

    def top_configurations(
        self, signature: OpSignature, count: int
    ) -> list[ConfigurationPrediction]:
        if count < 1:
            raise ValueError("count must be at least 1")
        sweep = self._sweeps[signature]
        ranked = sorted(sweep.items(), key=lambda kv: kv[1])[:count]
        return [
            ConfigurationPrediction(threads=t, affinity=a, predicted_time=time)
            for (t, a), time in ranked
        ]

    def sweep(self, signature: OpSignature) -> dict[tuple[int, AffinityMode], float]:
        """The cached exhaustive sweep (a copy)."""
        return dict(self._sweeps[signature])
