"""Figure 5: GPU kernel time versus the launch configuration.

The paper's preliminary GPU study sweeps the number of threads per block
(with the default 56 blocks) and the number of thread blocks (with the
default 1024 threads per block) for ``BiasAdd`` and ``MaxPooling`` on a
Tesla P100, and finds up to 18% / 11% gaps between TensorFlow's default
launch and the best one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execsim.gpu import GpuKernelModel
from repro.experiments.common import experiment_machine, recorded
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.hardware.gpu import GpuSpec, p100_gpu
from repro.hardware.topology import Machine
from repro.ops.cost import characterize
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

PAPER_REFERENCE = {
    "max_gap_threads_per_block": 0.18,
    "max_gap_num_blocks": 0.11,
}

THREADS_PER_BLOCK: tuple[int, ...] = (64, 128, 256, 512, 1024)
NUM_BLOCKS: tuple[int, ...] = (14, 56, 112, 224, 896)

#: Inception-v3-sized inputs, as in the paper's GPU study.
_BIAS_SHAPE = TensorShape((32, 17, 17, 384))
_POOL_IN = TensorShape((32, 35, 35, 288))
_POOL_OUT = TensorShape((32, 17, 17, 288))


def _gpu_ops() -> dict[str, OpInstance]:
    return {
        "BiasAdd": OpInstance(
            "gpu_bias_add",
            "BiasAdd",
            (_BIAS_SHAPE, TensorShape((384,))),
            _BIAS_SHAPE,
        ),
        "MaxPooling": OpInstance(
            "gpu_max_pool",
            "MaxPooling",
            (_POOL_IN,),
            _POOL_OUT,
            attrs={"kernel": (3, 3), "stride": 2},
        ),
    }


@dataclass
class Fig5Result:
    #: op -> {threads_per_block: time} with the default block count.
    threads_sweep: dict[str, dict[int, float]] = field(default_factory=dict)
    #: op -> {num_blocks: time} with the default threads per block.
    blocks_sweep: dict[str, dict[int, float]] = field(default_factory=dict)

    def default_gap_threads(self, op: str, default: int = 1024) -> float:
        sweep = self.threads_sweep[op]
        best = min(sweep.values())
        return (sweep[default] - best) / sweep[default]

    def default_gap_blocks(self, op: str, default: int = 56) -> float:
        sweep = self.blocks_sweep[op]
        best = min(sweep.values())
        return (sweep[default] - best) / sweep[default]


def _op_task(
    name: str,
    threads_candidates: tuple[int, ...],
    block_candidates: tuple[int, ...],
    repeats: int,
    spec: GpuSpec,
) -> tuple[dict[int, float], dict[int, float]]:
    """Both launch-configuration sweeps of one GPU op (one sweep task)."""
    gpu = GpuKernelModel(spec)
    chars = characterize(_gpu_ops()[name])
    threads_sweep = {
        tpb: time * repeats
        for tpb, time in gpu.sweep_threads_per_block(chars, threads_candidates).items()
    }
    blocks_sweep = {
        blocks: time * repeats
        for blocks, time in gpu.sweep_num_blocks(chars, block_candidates).items()
    }
    return threads_sweep, blocks_sweep


@recorded("fig5")
def run(
    machine: "str | Machine | None" = None,
    *,
    threads_candidates: tuple[int, ...] = THREADS_PER_BLOCK,
    block_candidates: tuple[int, ...] = NUM_BLOCKS,
    repeats: int = 10000,
    executor: SweepExecutor | None = None,
) -> Fig5Result:
    """Launch-configuration sweeps on the simulated GPU.

    ``machine`` selects whose GPU to model: a zoo machine with an
    attached accelerator (e.g. ``gpu-node-16c``) contributes its
    :attr:`Machine.gpu` spec; machines without one — including the
    paper's KNL — fall back to the paper's P100.
    """
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    spec = machine.gpu if machine.gpu is not None else p100_gpu()
    result = Fig5Result()
    names = list(_gpu_ops())
    sweeps = executor.map(
        _op_task,
        [
            (name, tuple(threads_candidates), tuple(block_candidates), repeats, spec)
            for name in names
        ],
    )
    for name, (threads_sweep, blocks_sweep) in zip(names, sweeps):
        result.threads_sweep[name] = threads_sweep
        result.blocks_sweep[name] = blocks_sweep
    return result


def format_report(result: Fig5Result) -> str:
    lines = []
    table_a = TextTable(
        ["op"] + [str(t) for t in sorted(next(iter(result.threads_sweep.values())))],
        title="Figure 5a — execution time (s, 10000 runs) vs threads per block (56 blocks)",
    )
    for op, sweep in result.threads_sweep.items():
        table_a.add_row([op] + [f"{sweep[t]:.2f}" for t in sorted(sweep)])
    lines.append(table_a.render())
    table_b = TextTable(
        ["op"] + [str(b) for b in sorted(next(iter(result.blocks_sweep.values())))],
        title="Figure 5b — execution time (s, 10000 runs) vs number of blocks (1024 threads/block)",
    )
    for op, sweep in result.blocks_sweep.items():
        table_b.add_row([op] + [f"{sweep[b]:.2f}" for b in sorted(sweep)])
    lines.append(table_b.render())
    for op in result.threads_sweep:
        lines.append(
            f"{op}: default-vs-best gap {result.default_gap_threads(op) * 100:.1f}% "
            f"(threads/block), {result.default_gap_blocks(op) * 100:.1f}% (#blocks)"
        )
    return "\n\n".join(lines)
