"""Fleet co-run: Table III raised from op pairs on cores to jobs on machines.

Table III shows that *how* two operations share one chip (serial /
hyper-threads / split cores) changes throughput by up to 38%.  This
experiment asks the same question one level up: a fixed 50-job trace is
placed across five heterogeneous zoo machines by each placement policy,
and the policies are compared on makespan — the fleet-scale analogue of
the table's three co-running strategies, with first-fit playing the
"serial execution" baseline and the interference-aware policy the
"threads control" row.

``python -m repro.experiments fleet`` runs it; ``--policy`` narrows the
comparison, ``--machines`` swaps the fleet, ``--trace-seed`` (alias
``--arrival-seed``) replays a different trace, and ``--num-jobs`` /
``--steps MIN:MAX`` / ``--mean-interarrival`` scale it — the
round-compression fast path (:class:`~repro.fleet.FleetSimulator`)
keeps thousand-job traces interactive.  ``--arrival-process`` swaps the
default Poisson trace for a registered open-loop arrival spec
(``overload``, ``rush-hour``, ``flash-crowd``, ...), streamed lazily;
``--queue-limit`` / ``--deadline`` / ``--shed-policy`` activate
admission control, adding shed/p99-wait/peak-depth columns.  Results
are deterministic for fixed inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import DEFAULT_FLEET
from repro.fleet import FleetSimulator, StepTimeEstimator, available_policies, generate_trace
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable
from repro.experiments.common import recorded

#: What the single-machine Table III achieved (split cores vs serial);
#: the fleet-scale question is whether placement recovers the same kind
#: of headroom across machines.
PAPER_REFERENCE = {"table3_split_speedup": 1.38}

#: The canonical fleet workload: a 50-job trace over the default fleet.
NUM_JOBS = 50
ARRIVAL_SEED = 0


@dataclass(frozen=True)
class FleetPolicyRow:
    policy: str
    makespan: float
    mean_wait_time: float
    corun_rounds: int
    total_rounds: int
    blacklisted_pairs: int
    # -- fault accounting (all zero on fault-free runs) --------------------------
    retries: int = 0
    preemptions: int = 0
    lost_steps: int = 0
    failed_jobs: int = 0
    # -- admission accounting (all zero without admission control) ---------------
    rejections: int = 0
    peak_queue_depth: int = 0
    p99_wait: float = 0.0


@dataclass(frozen=True)
class FleetCorunResult:
    machines: tuple[str, ...]
    num_jobs: int
    arrival_seed: int
    rows: tuple[FleetPolicyRow, ...]
    min_steps: int = 3
    max_steps: int = 10
    #: The fault plan spec in effect (None for fault-free runs).
    fault_spec: dict | None = None
    #: The arrival-process spec in effect (None for materialised traces).
    arrival_spec: dict | None = None
    #: The admission controller in effect (None when everything admits).
    admission_spec: dict | None = None

    @property
    def speedups_vs_first_fit(self) -> dict[str, float]:
        baseline = next(
            (row.makespan for row in self.rows if row.policy == "first-fit"),
            self.rows[0].makespan,
        )
        return {row.policy: baseline / row.makespan for row in self.rows}


@recorded("fleet")
def run(
    *,
    policies: tuple[str, ...] | None = None,
    machines: tuple[str, ...] | None = None,
    num_jobs: int = NUM_JOBS,
    arrival_seed: int = ARRIVAL_SEED,
    mean_interarrival: float = 2.0,
    min_steps: int = 3,
    max_steps: int = 10,
    arrival_process: str | dict | None = None,
    queue_limit: int | None = None,
    deadline: float | None = None,
    shed_policy: str = "reject-at-arrival",
    compressed: bool = True,
    shards: int | None = None,
    fleet_backend: str = "serial",
    executor: SweepExecutor | None = None,
    fault_plan: str | dict | None = None,
    fault_seed: int | None = None,
    crash_rate: float | None = None,
    straggler_rate: float | None = None,
) -> FleetCorunResult:
    """Place the same trace under each policy and compare makespans.

    ``num_jobs``, ``arrival_seed``, ``mean_interarrival`` and
    ``min_steps``/``max_steps`` parameterise the generated trace, so
    large reproducible workloads are one CLI flag away (``--num-jobs
    1000 --steps 200:600``).

    Open loop: ``arrival_process`` names a registered arrival spec
    (``--arrival-process overload``) or carries a spec dict; the stream
    is pulled lazily and every policy replays the identical arrivals.
    ``queue_limit`` / ``deadline`` / ``shed_policy`` activate admission
    control so overload sheds instead of queueing without bound.

    Faults: ``fault_plan`` names a registered fault spec or carries a
    JSON spec directly (``--fault-plan``); alternatively ``fault_seed``
    with ``crash_rate``/``straggler_rate`` generates a seeded random
    plan over the trace's span (``--fault-seed --crash-rate
    --straggler-rate``).  Every policy replays the identical plan.

    ``shards`` runs the sharded fleet engine (``--shards``), advancing
    disjoint machine groups independently between synchronisation
    points; ``fleet_backend`` picks the shard execution backend
    (``--fleet-backend process`` parallelises across cores).  Results
    are byte-identical to the default single-process path.
    """
    from repro.fleet.arrivals import AdmissionController, resolve_arrivals
    from repro.fleet.faults import generate_fault_plan, resolve_fault_plan

    policies = policies or available_policies()
    machines = machines or DEFAULT_FLEET
    executor = executor or get_default_executor()
    process = None
    if arrival_process is not None:
        process = resolve_arrivals(
            arrival_process,
            num_jobs=num_jobs,
            seed=arrival_seed,
            mean_interarrival=mean_interarrival,
            min_steps=min_steps,
            max_steps=max_steps,
        )
        jobs = process
        # The arrival span without materialising the stream: the
        # expected span of the process (num_jobs * mean gap).
        arrival_span = num_jobs * getattr(
            process, "mean_interarrival", mean_interarrival
        )
    else:
        jobs = generate_trace(
            num_jobs,
            seed=arrival_seed,
            mean_interarrival=mean_interarrival,
            min_steps=min_steps,
            max_steps=max_steps,
        )
        arrival_span = jobs[-1].arrival_time if jobs else 0.0
    admission = None
    if queue_limit is not None or deadline is not None:
        admission = AdmissionController(
            queue_limit=queue_limit, deadline=deadline, shed_policy=shed_policy
        )
    if fault_plan is not None:
        plan = resolve_fault_plan(fault_plan)
    elif fault_seed is not None or crash_rate or straggler_rate:
        # Fault window: 1.5x the arrival span, so late faults still land
        # while the tail of the trace is draining.
        horizon = max(1.0, arrival_span * 1.5)
        plan = generate_fault_plan(
            [f"m{i}" for i in range(len(machines))],
            horizon=horizon,
            seed=fault_seed or 0,
            crash_rate=crash_rate or 0.0,
            straggler_rate=straggler_rate or 0.0,
        )
    else:
        plan = None
    # One estimator across policies: step times are pure functions of the
    # (machine, mix), so every policy after the first replays from memo.
    estimator = StepTimeEstimator(executor=executor)
    rows = []
    for policy in policies:
        simulator = FleetSimulator(
            machines,
            policy=policy,
            estimator=estimator,
            compressed=compressed,
            shards=shards,
            shard_backend=fleet_backend,
            admission=admission,
        )
        result = simulator.run(jobs, faults=plan)
        rows.append(
            FleetPolicyRow(
                policy=policy,
                makespan=result.makespan,
                mean_wait_time=result.mean_wait_time,
                corun_rounds=sum(m.corun_rounds for m in result.machine_reports),
                total_rounds=sum(m.rounds for m in result.machine_reports),
                blacklisted_pairs=len(result.blacklisted_pairs),
                retries=result.retries,
                preemptions=result.preemptions,
                lost_steps=result.lost_steps,
                failed_jobs=len(result.failures),
                rejections=len(result.rejections),
                peak_queue_depth=result.peak_queue_depth,
                p99_wait=result.wait_percentiles["p99"],
            )
        )
    arrival_spec = None
    if process is not None:
        try:
            arrival_spec = process.to_dict()
        except TypeError:  # replay traces have no compact spec
            arrival_spec = {"kind": process.kind, "num_jobs": process.num_jobs}
    return FleetCorunResult(
        machines=tuple(machines),
        num_jobs=num_jobs,
        arrival_seed=arrival_seed,
        rows=tuple(rows),
        min_steps=min_steps,
        max_steps=max_steps,
        fault_spec=plan.to_dict() if plan is not None else None,
        arrival_spec=arrival_spec,
        admission_spec=admission.to_dict() if admission is not None else None,
    )


def _describe_fleet(machines: tuple[str, ...]) -> str:
    """Compact fleet description: duplicates collapse to ``name x count``."""
    counts: dict[str, int] = {}
    for name in machines:
        counts[name] = counts.get(name, 0) + 1
    return ", ".join(
        name if count == 1 else f"{name} x{count}" for name, count in counts.items()
    )


def format_report(result: FleetCorunResult) -> str:
    faulted = result.fault_spec is not None
    admitted = result.admission_spec is not None
    columns = ["policy", "makespan (s)", "mean wait (s)", "co-run rounds", "blacklisted", "speedup"]
    if faulted:
        columns += ["retries", "preempted", "lost steps", "failed"]
    if admitted:
        columns += ["shed", "peak queue", "p99 wait (s)"]
    title = (
        f"Fleet co-run — {result.num_jobs} jobs "
        f"({result.min_steps}-{result.max_steps} steps each) over "
        f"{len(result.machines)} machines "
        f"({_describe_fleet(result.machines)}; arrival seed {result.arrival_seed})"
    )
    if result.arrival_spec is not None:
        title += f" [{result.arrival_spec['kind']} arrivals]"
    if faulted:
        title += f" under {len(result.fault_spec['events'])} fault events"
    if admitted:
        title += f" with admission {result.admission_spec['shed_policy']}"
    table = TextTable(columns, title=title)
    speedups = result.speedups_vs_first_fit
    for row in result.rows:
        cells = [
            row.policy,
            row.makespan,
            row.mean_wait_time,
            f"{row.corun_rounds}/{row.total_rounds}",
            str(row.blacklisted_pairs),
            speedups[row.policy],
        ]
        if faulted:
            cells += [
                str(row.retries),
                str(row.preemptions),
                str(row.lost_steps),
                str(row.failed_jobs),
            ]
        if admitted:
            cells += [
                str(row.rejections),
                str(row.peak_queue_depth),
                row.p99_wait,
            ]
        table.add_row(cells)
    return table.render()
