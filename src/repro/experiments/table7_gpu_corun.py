"""Table VII: co-running operations in separate CUDA streams.

For five operation types the paper runs two instances either serially
(TensorFlow's single-stream default) or concurrently in two streams; the
co-run wins by 1.75x-1.91x because a single kernel does not keep the
whole GPU busy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execsim.gpu import GpuKernelModel
from repro.experiments.common import experiment_machine, recorded
from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.hardware.gpu import GpuSpec, p100_gpu
from repro.hardware.topology import Machine
from repro.ops.cost import characterize
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

PAPER_REFERENCE = {
    "Conv2DBackpropFilter": 1.78,
    "Conv2DBackpropInput": 1.84,
    "Conv2D": 1.91,
    "BiasAdd": 1.79,
    "MaxPooling": 1.75,
}


def _gpu_ops() -> dict[str, OpInstance]:
    act = TensorShape((32, 17, 17, 384))
    grad = TensorShape((32, 17, 17, 384))
    weights = TensorShape((3, 3, 384, 384))
    attrs = {"kernel": (3, 3), "stride": 1}
    return {
        "Conv2DBackpropFilter": OpInstance(
            "gpu_filter_grad", "Conv2DBackpropFilter", (act, grad), weights, attrs=attrs
        ),
        "Conv2DBackpropInput": OpInstance(
            "gpu_input_grad", "Conv2DBackpropInput", (act, grad), act, attrs=attrs
        ),
        "Conv2D": OpInstance("gpu_conv", "Conv2D", (act,), grad, attrs=attrs),
        "BiasAdd": OpInstance(
            "gpu_bias", "BiasAdd", (act, TensorShape((384,))), act
        ),
        "MaxPooling": OpInstance(
            "gpu_pool",
            "MaxPooling",
            (TensorShape((32, 35, 35, 288)),),
            TensorShape((32, 17, 17, 288)),
            attrs={"kernel": (3, 3), "stride": 2},
        ),
    }


@dataclass
class Table7Result:
    #: op -> (serial time, co-run time) over `repeats` invocations of 2 instances.
    times: dict[str, tuple[float, float]] = field(default_factory=dict)

    def speedup(self, op: str) -> float:
        serial, corun = self.times[op]
        return serial / corun


def _op_task(name: str, repeats: int, spec: GpuSpec) -> tuple[float, float]:
    """(serial, co-run) times of one op's two instances (one sweep task)."""
    gpu = GpuKernelModel(spec)
    chars = characterize(_gpu_ops()[name])
    config, _ = gpu.best_config(chars)
    kernels = ((chars, config), (chars, config))
    serial = gpu.serial_time(kernels, repeats=repeats)
    corun = gpu.corun_time(kernels, repeats=repeats)
    return serial, corun


@recorded("table7")
def run(
    machine: "str | Machine | None" = None,
    *,
    repeats: int = 10000,
    executor: SweepExecutor | None = None,
) -> Table7Result:
    """Serial vs two-stream co-run of five ops on the simulated GPU.

    ``machine`` selects whose GPU to model: a zoo machine with an
    attached accelerator (e.g. ``gpu-node-16c``) contributes its
    :attr:`Machine.gpu` spec; machines without one — including the
    paper's KNL — fall back to the paper's P100.
    """
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    spec = machine.gpu if machine.gpu is not None else p100_gpu()
    result = Table7Result()
    names = list(_gpu_ops())
    times = executor.map(_op_task, [(name, repeats, spec) for name in names])
    for name, (serial, corun) in zip(names, times):
        result.times[name] = (serial, corun)
    return result


def format_report(result: Table7Result) -> str:
    table = TextTable(
        ["operation", "serial (s)", "co-run (s)", "speedup"],
        title="Table VII — co-running two instances in separate CUDA streams (10000 runs)",
    )
    for op, (serial, corun) in result.times.items():
        table.add_row([op, serial, corun, f"{result.speedup(op):.2f}"])
    return table.render()
