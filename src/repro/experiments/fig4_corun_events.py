"""Figure 4: number of co-running operations per scheduling event.

The paper records, at every operation launch/finish event, how many
operations are running; with Strategy 4 in place the average is higher
(1.74-2.04) than with Strategy 3 alone (1.52-1.62), and both schedules
vary the concurrency dynamically instead of fixing the inter-op
parallelism as TensorFlow does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import RuntimeConfig
from repro.core.runtime import TrainingRuntime
from repro.core.scheduler import RuntimeSchedulerPolicy
from repro.experiments.common import build_paper_model, experiment_machine, recorded
from repro.hardware.topology import Machine
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

PAPER_REFERENCE = {
    ("resnet50", "with_s4"): 1.89,
    ("dcgan", "with_s4"): 2.04,
    ("inception_v3", "with_s4"): 1.74,
    ("resnet50", "without_s4"): 1.61,
    ("dcgan", "without_s4"): 1.62,
    ("inception_v3", "without_s4"): 1.52,
}

#: LSTM is excluded in the paper (Strategy 4 changes nothing for it).
MODELS: tuple[str, ...] = ("resnet50", "dcgan", "inception_v3")


@dataclass
class Fig4Result:
    #: model -> co-running counts at each event, with Strategy 4.
    with_s4: dict[str, list[int]] = field(default_factory=dict)
    #: model -> co-running counts at each event, without Strategy 4.
    without_s4: dict[str, list[int]] = field(default_factory=dict)

    def averages(self) -> dict[tuple[str, str], float]:
        out: dict[tuple[str, str], float] = {}
        for model, series in self.with_s4.items():
            out[(model, "with_s4")] = sum(series) / len(series) if series else 0.0
        for model, series in self.without_s4.items():
            out[(model, "without_s4")] = sum(series) / len(series) if series else 0.0
        return out


def _series_task(
    model_name: str, reduced: bool, max_events: int, machine: Machine
) -> tuple[list[int], list[int]]:
    """(without S4, with S4) co-running series of one model (one task)."""
    graph = build_paper_model(model_name, reduced=reduced)
    runtime = TrainingRuntime(machine)
    model = runtime.profile(graph)

    def corunning_series(config: RuntimeConfig, label: str) -> list[int]:
        policy = RuntimeSchedulerPolicy(model, config, label=label)
        outcome = runtime.simulator.run_step(graph, policy, step_name=label)
        return outcome.trace.corunning_series()[:max_events]

    without_s4 = corunning_series(RuntimeConfig.strategies_1_2_3(), "without_s4")
    with_s4 = corunning_series(RuntimeConfig.all_strategies(), "with_s4")
    return without_s4, with_s4


@recorded("fig4")
def run(
    machine: str | Machine | None = None,
    *,
    models: tuple[str, ...] = MODELS,
    max_events: int = 6000,
    reduced: bool = False,
    executor: SweepExecutor | None = None,
) -> Fig4Result:
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    result = Fig4Result()
    series = executor.map(
        _series_task, [(name, reduced, max_events, machine) for name in models]
    )
    for model_name, (without_s4, with_s4) in zip(models, series):
        result.without_s4[model_name] = without_s4
        result.with_s4[model_name] = with_s4
    return result


def format_report(result: Fig4Result) -> str:
    averages = result.averages()
    table = TextTable(
        ["model", "avg co-running (S3 only)", "avg co-running (S3+S4)", "events"],
        title="Figure 4 — number of co-running operations per scheduling event",
    )
    for model in result.with_s4:
        table.add_row(
            [
                model,
                f"{averages[(model, 'without_s4')]:.2f}",
                f"{averages[(model, 'with_s4')]:.2f}",
                len(result.with_s4[model]),
            ]
        )
    return table.render()
