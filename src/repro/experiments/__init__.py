"""One module per table/figure of the paper's evaluation.

Every experiment module exposes

* ``run(...)`` — execute the experiment on the simulated substrate and
  return a result dataclass;
* ``format_report(result)`` — render the result as a text table shaped
  like the corresponding table/figure of the paper;
* ``PAPER_REFERENCE`` — the headline numbers the paper reports, for
  side-by-side comparison in EXPERIMENTS.md.

``repro.experiments.cli`` runs any subset of them from the command line
(``repro-experiments fig1 table3 ...``).
"""

from repro.experiments import (
    fig1_threads,
    fig3_strategies,
    fig4_corun_events,
    fig5_gpu_intraop,
    fleet_corun,
    table1_parallelism,
    table2_input_size,
    table3_corun,
    table4_regression,
    table5_hillclimb,
    table6_topops,
    table7_gpu_corun,
)

ALL_EXPERIMENTS = {
    "fig1": fig1_threads,
    "table1": table1_parallelism,
    "table2": table2_input_size,
    "table3": table3_corun,
    "table4": table4_regression,
    "table5": table5_hillclimb,
    "fig3": fig3_strategies,
    "table6": table6_topops,
    "fig4": fig4_corun_events,
    "fig5": fig5_gpu_intraop,
    "table7": table7_gpu_corun,
    "fleet": fleet_corun,
}

__all__ = ["ALL_EXPERIMENTS"]
