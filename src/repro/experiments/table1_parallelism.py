"""Table I: NN model performance under uniform inter-op / intra-op settings.

The paper runs ResNet-50 and DCGAN with every combination of inter-op
parallelism in {1, 2, 4} and intra-op parallelism in {34, 68, 136}, and
shows that the recommended configuration (1, 68) is not the best — up to
28% better configurations exist — while oversubscribed settings are far
worse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.tf_default import UniformPolicy, recommended_policy
from repro.execsim.simulator import StepSimulator
from repro.experiments.common import build_paper_model, default_machine
from repro.hardware.topology import Machine
from repro.utils.tables import TextTable

#: Speedups over the recommendation the paper reports (ResNet-50, DCGAN).
PAPER_REFERENCE = {
    ("resnet50", 1, 34): 0.98,
    ("resnet50", 2, 34): 1.27,
    ("resnet50", 2, 136): 0.34,
    ("resnet50", 4, 68): 0.45,
    ("dcgan", 1, 34): 1.21,
    ("dcgan", 2, 34): 1.28,
    ("dcgan", 2, 136): 0.42,
    ("dcgan", 4, 68): 0.93,
}

MODELS: tuple[str, ...] = ("resnet50", "dcgan")
INTER_OP: tuple[int, ...] = (1, 2, 4)
INTRA_OP: tuple[int, ...] = (34, 68, 136)


@dataclass
class Table1Result:
    """Step times and speedups for every (model, inter, intra) combination."""

    #: (model, inter, intra) -> step time in seconds.
    times: dict[tuple[str, int, int], float] = field(default_factory=dict)
    #: model -> baseline (recommendation) step time.
    baselines: dict[str, float] = field(default_factory=dict)

    def speedup(self, model: str, inter: int, intra: int) -> float:
        return self.baselines[model] / self.times[(model, inter, intra)]


def run(
    machine: Machine | None = None,
    *,
    models: tuple[str, ...] = MODELS,
    reduced: bool = False,
) -> Table1Result:
    machine = machine or default_machine()
    simulator = StepSimulator(machine)
    result = Table1Result()
    for model in models:
        graph = build_paper_model(model, reduced=reduced)
        baseline = simulator.run_step(graph, recommended_policy(machine))
        result.baselines[model] = baseline.step_time
        for inter in INTER_OP:
            for intra in INTRA_OP:
                outcome = simulator.run_step(graph, UniformPolicy(intra, inter))
                result.times[(model, inter, intra)] = outcome.step_time
    return result


def format_report(result: Table1Result) -> str:
    models = sorted(result.baselines)
    headers = ["inter-op", "intra-op"]
    for model in models:
        headers.extend([f"{model} time (ms)", f"{model} speedup"])
    table = TextTable(headers, title="Table I — uniform inter-op / intra-op parallelism")
    for inter in INTER_OP:
        for intra in INTRA_OP:
            row: list = [inter, intra]
            for model in models:
                time = result.times[(model, inter, intra)]
                row.extend([time * 1e3, result.speedup(model, inter, intra)])
            table.add_row(row)
    return table.render()
