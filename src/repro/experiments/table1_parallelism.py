"""Table I: NN model performance under uniform inter-op / intra-op settings.

The paper runs ResNet-50 and DCGAN with every combination of inter-op
parallelism in {1, 2, 4} and intra-op parallelism in {34, 68, 136}, and
shows that the recommended configuration (1, 68) is not the best — up to
28% better configurations exist — while oversubscribed settings are far
worse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.tf_default import UniformPolicy, recommended_policy
from repro.execsim.simulator import StepSimulator
from repro.experiments.common import build_paper_model, experiment_machine, recorded
from repro.hardware.topology import Machine
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

#: Speedups over the recommendation the paper reports (ResNet-50, DCGAN).
PAPER_REFERENCE = {
    ("resnet50", 1, 34): 0.98,
    ("resnet50", 2, 34): 1.27,
    ("resnet50", 2, 136): 0.34,
    ("resnet50", 4, 68): 0.45,
    ("dcgan", 1, 34): 1.21,
    ("dcgan", 2, 34): 1.28,
    ("dcgan", 2, 136): 0.42,
    ("dcgan", 4, 68): 0.93,
}

MODELS: tuple[str, ...] = ("resnet50", "dcgan")
INTER_OP: tuple[int, ...] = (1, 2, 4)
#: The paper's intra-op grid on the 68-core KNL: half the cores, all the
#: cores, one thread per pair of logical CPUs.  Other machines use the
#: same shape relative to their own core count (see :func:`intra_op_grid`).
INTRA_OP: tuple[int, ...] = (34, 68, 136)


def intra_op_grid(machine: Machine) -> tuple[int, ...]:
    """The (cores/2, cores, 2*cores) grid of Table I for any machine."""
    cores = machine.topology.num_cores
    return (max(1, cores // 2), cores, cores * 2)


@dataclass
class Table1Result:
    """Step times and speedups for every (model, inter, intra) combination."""

    #: (model, inter, intra) -> step time in seconds.
    times: dict[tuple[str, int, int], float] = field(default_factory=dict)
    #: model -> baseline (recommendation) step time.
    baselines: dict[str, float] = field(default_factory=dict)

    def speedup(self, model: str, inter: int, intra: int) -> float:
        return self.baselines[model] / self.times[(model, inter, intra)]


def _step_task(
    model: str, reduced: bool, inter: int | None, intra: int | None, machine: Machine
) -> float:
    """Step time of one (model, inter, intra) cell.

    ``inter is None`` runs the TensorFlow-recommended baseline instead of
    a uniform policy.  The graph is rebuilt inside the task so the work
    ships to process workers as a handful of primitives.
    """
    graph = build_paper_model(model, reduced=reduced)
    simulator = StepSimulator(machine)
    if inter is None:
        policy = recommended_policy(machine)
    else:
        policy = UniformPolicy(intra, inter)
    return simulator.run_step(graph, policy).step_time


@recorded("table1")
def run(
    machine: str | Machine | None = None,
    *,
    models: tuple[str, ...] = MODELS,
    intra_op: tuple[int, ...] | None = None,
    reduced: bool = False,
    executor: SweepExecutor | None = None,
) -> Table1Result:
    machine = experiment_machine(machine)
    if intra_op is None:
        intra_op = intra_op_grid(machine)
    executor = executor or get_default_executor()
    result = Table1Result()
    cells: list[tuple[str, int | None, int | None]] = []
    for model in models:
        cells.append((model, None, None))
        for inter in INTER_OP:
            for intra in intra_op:
                cells.append((model, inter, intra))
    times = executor.map(
        _step_task, [(model, reduced, inter, intra, machine) for model, inter, intra in cells]
    )
    for (model, inter, intra), step_time in zip(cells, times):
        if inter is None:
            result.baselines[model] = step_time
        else:
            result.times[(model, inter, intra)] = step_time
    return result


def format_report(result: Table1Result) -> str:
    models = sorted(result.baselines)
    headers = ["inter-op", "intra-op"]
    for model in models:
        headers.extend([f"{model} time (ms)", f"{model} speedup"])
    table = TextTable(headers, title="Table I — uniform inter-op / intra-op parallelism")
    # The grid is recovered from the result so reports stay correct for
    # machines whose intra-op candidates differ from the KNL defaults.
    grid = sorted({(inter, intra) for (_, inter, intra) in result.times})
    for inter, intra in grid:
        row: list = [inter, intra]
        for model in models:
            time = result.times[(model, inter, intra)]
            row.extend([time * 1e3, result.speedup(model, inter, intra)])
        table.add_row(row)
    return table.render()
