"""Table V: prediction accuracy of the hill-climbing performance model.

For each of the four NN models and each hill-climbing interval
x in {2, 4, 8, 16}, the paper reports the average accuracy of predicting
the execution time of the configurations the hill climb did not measure.
Accuracy is high for small intervals (98% at x=2, ~94% at x=4) and drops
sharply for coarse intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hill_climbing import HillClimbingModel, HillClimbingProfile, ground_truth_sweeps
from repro.execsim.standalone import StandaloneRunner
from repro.experiments.common import PAPER_MODELS, build_paper_model, experiment_machine, recorded
from repro.hardware.topology import Machine
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

PAPER_REFERENCE = {
    ("resnet50", 2): 0.9813,
    ("resnet50", 4): 0.9545,
    ("dcgan", 2): 0.9716,
    ("dcgan", 4): 0.9443,
    ("inception_v3", 2): 0.9791,
    ("inception_v3", 4): 0.9422,
    ("lstm", 2): 0.9556,
    ("lstm", 4): 0.9045,
}

INTERVALS: tuple[int, ...] = (2, 4, 8, 16)


@dataclass
class Table5Result:
    #: (model, interval) -> prediction accuracy in [0, 1].
    accuracy: dict[tuple[str, int], float] = field(default_factory=dict)
    #: (model, interval) -> number of standalone measurements the profiler took.
    measurements: dict[tuple[str, int], int] = field(default_factory=dict)


def _truth_task(model_name: str, reduced: bool, machine: Machine):
    """Exhaustive noise-free ground-truth sweeps of one model's signatures."""
    graph = build_paper_model(model_name, reduced=reduced)
    # The serial executor keeps the nested fan-out inside this task; the
    # per-signature sweeps are memoised by the vectorised grid anyway.
    return ground_truth_sweeps(
        list(graph), StandaloneRunner(machine), executor=SweepExecutor("serial")
    )


def _profile_task(
    model_name: str, interval: int, reduced: bool, profiling_noise: float, machine: Machine
) -> tuple[HillClimbingProfile, ...]:
    """Hill-climb profiles of one (model, interval) cell.

    Deterministic: the profiling runner is seeded by the interval, so the
    cell is a pure function of its arguments (which is what makes it
    cacheable and backend-independent).
    """
    graph = build_paper_model(model_name, reduced=reduced)
    runner = StandaloneRunner(machine, noise_sigma=profiling_noise, seed=interval)
    model = HillClimbingModel(machine, interval=interval)
    model.profile_graph(graph, runner)
    return tuple(model.profile_for(signature) for signature in model.signatures)


@recorded("table5")
def run(
    machine: str | Machine | None = None,
    *,
    models: tuple[str, ...] = PAPER_MODELS,
    intervals: tuple[int, ...] = INTERVALS,
    reduced: bool = True,
    profiling_noise: float = 0.01,
    executor: SweepExecutor | None = None,
) -> Table5Result:
    """Profile every model with every interval and score the interpolation.

    ``reduced=True`` uses the smaller model variants (same op-type and
    shape mix, fewer layers) so the sweep stays fast; accuracy is computed
    per unique operation signature, so the reduction barely affects it.
    The per-model ground truths and per-(model, interval) profiles are
    independent sweep tasks; scoring happens in the parent.
    """
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    result = Table5Result()

    truths = executor.map(_truth_task, [(name, reduced, machine) for name in models])
    cells = [(name, interval) for name in models for interval in intervals]
    profiles = executor.map(
        _profile_task,
        [(name, interval, reduced, profiling_noise, machine) for name, interval in cells],
    )
    truth_by_model = dict(zip(models, truths))
    for (model_name, interval), cell_profiles in zip(cells, profiles):
        model = HillClimbingModel(machine, interval=interval)
        for profile in cell_profiles:
            model.add_profile(profile)
        accuracy = model.accuracy_against(truth_by_model[model_name])
        result.accuracy[(model_name, interval)] = accuracy.accuracy
        result.measurements[(model_name, interval)] = model.total_measurements()
    return result


def format_report(result: Table5Result) -> str:
    intervals = sorted({interval for _, interval in result.accuracy})
    models = sorted({model for model, _ in result.accuracy})
    table = TextTable(
        ["model"] + [f"x={interval}" for interval in intervals],
        title="Table V — hill-climbing performance model prediction accuracy",
    )
    for model in models:
        row: list = [model]
        for interval in intervals:
            row.append(f"{result.accuracy[(model, interval)] * 100:.2f}%")
        table.add_row(row)
    return table.render()
