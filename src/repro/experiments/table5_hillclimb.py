"""Table V: prediction accuracy of the hill-climbing performance model.

For each of the four NN models and each hill-climbing interval
x in {2, 4, 8, 16}, the paper reports the average accuracy of predicting
the execution time of the configurations the hill climb did not measure.
Accuracy is high for small intervals (98% at x=2, ~94% at x=4) and drops
sharply for coarse intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hill_climbing import HillClimbingModel, ground_truth_sweeps
from repro.execsim.standalone import StandaloneRunner
from repro.experiments.common import PAPER_MODELS, build_paper_model, default_machine
from repro.hardware.topology import Machine
from repro.utils.tables import TextTable

PAPER_REFERENCE = {
    ("resnet50", 2): 0.9813,
    ("resnet50", 4): 0.9545,
    ("dcgan", 2): 0.9716,
    ("dcgan", 4): 0.9443,
    ("inception_v3", 2): 0.9791,
    ("inception_v3", 4): 0.9422,
    ("lstm", 2): 0.9556,
    ("lstm", 4): 0.9045,
}

INTERVALS: tuple[int, ...] = (2, 4, 8, 16)


@dataclass
class Table5Result:
    #: (model, interval) -> prediction accuracy in [0, 1].
    accuracy: dict[tuple[str, int], float] = field(default_factory=dict)
    #: (model, interval) -> number of standalone measurements the profiler took.
    measurements: dict[tuple[str, int], int] = field(default_factory=dict)


def run(
    machine: Machine | None = None,
    *,
    models: tuple[str, ...] = PAPER_MODELS,
    intervals: tuple[int, ...] = INTERVALS,
    reduced: bool = True,
    profiling_noise: float = 0.01,
) -> Table5Result:
    """Profile every model with every interval and score the interpolation.

    ``reduced=True`` uses the smaller model variants (same op-type and
    shape mix, fewer layers) so the sweep stays fast; accuracy is computed
    per unique operation signature, so the reduction barely affects it.
    """
    machine = machine or default_machine()
    result = Table5Result()
    for model_name in models:
        graph = build_paper_model(model_name, reduced=reduced)
        truth_runner = StandaloneRunner(machine)
        truth = ground_truth_sweeps(list(graph), truth_runner)
        for interval in intervals:
            runner = StandaloneRunner(machine, noise_sigma=profiling_noise, seed=interval)
            model = HillClimbingModel(machine, interval=interval)
            model.profile_graph(graph, runner)
            accuracy = model.accuracy_against(truth)
            result.accuracy[(model_name, interval)] = accuracy.accuracy
            result.measurements[(model_name, interval)] = model.total_measurements()
    return result


def format_report(result: Table5Result) -> str:
    intervals = sorted({interval for _, interval in result.accuracy})
    models = sorted({model for model, _ in result.accuracy})
    table = TextTable(
        ["model"] + [f"x={interval}" for interval in intervals],
        title="Table V — hill-climbing performance model prediction accuracy",
    )
    for model in models:
        row: list = [model]
        for interval in intervals:
            row.append(f"{result.accuracy[(model, interval)] * 100:.2f}%")
        table.add_row(row)
    return table.render()
