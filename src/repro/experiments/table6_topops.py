"""Table VI: the top-5 most time-consuming operations per model.

The paper compares, per NN model, the aggregate time of the five most
expensive operation types under the TensorFlow recommendation and after
applying Strategies 1 and 2 (per-operation concurrency control); every
operation improves or at least matches, by up to 34%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.tf_default import recommended_policy
from repro.core.config import RuntimeConfig
from repro.core.runtime import TrainingRuntime
from repro.experiments.common import PAPER_MODELS, build_paper_model, experiment_machine, recorded
from repro.hardware.topology import Machine
from repro.profiling.profiler import StepProfiler
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

#: A few of the paper's per-op speedups from Strategies 1+2 (Table VI).
PAPER_REFERENCE = {
    ("resnet50", "Conv2DBackpropFilter"): 1.08,
    ("dcgan", "Conv2DBackpropInput"): 1.14,
    ("dcgan", "Conv2DBackpropFilter"): 1.21,
    ("inception_v3", "AvgPool"): 1.04,
    ("lstm", "SparseSoftmaxCross"): 1.34,
}


@dataclass(frozen=True)
class TopOpEntry:
    model: str
    op_type: str
    recommendation_time: float
    strategies_1_2_time: float

    @property
    def speedup(self) -> float:
        if self.strategies_1_2_time <= 0:
            return float("inf")
        return self.recommendation_time / self.strategies_1_2_time


@dataclass
class Table6Result:
    entries: list[TopOpEntry] = field(default_factory=list)

    def for_model(self, model: str) -> list[TopOpEntry]:
        return [e for e in self.entries if e.model == model]


def _model_task(
    model_name: str, reduced: bool, top_n: int, machine: Machine
) -> tuple[tuple[str, float, float], ...]:
    """Top-``top_n`` op-type aggregates of one model (one sweep task)."""
    graph = build_paper_model(model_name, reduced=reduced)
    runtime = TrainingRuntime(machine, RuntimeConfig.strategies_1_2())
    model = runtime.profile(graph)
    policy = runtime.build_policy(model)
    s12 = runtime.simulator.run_step(graph, policy, step_name="strategies_1_2")
    recommendation = runtime.simulator.run_step(
        graph, recommended_policy(machine), step_name="recommendation"
    )
    rec_stats = StepProfiler(recommendation.trace)
    s12_stats = StepProfiler(s12.trace)
    return tuple(
        (stats.op_type, stats.total_time, s12_stats.total_time_of(stats.op_type))
        for stats in rec_stats.top_op_types(top_n)
    )


@recorded("table6")
def run(
    machine: str | Machine | None = None,
    *,
    models: tuple[str, ...] = PAPER_MODELS,
    top_n: int = 5,
    reduced: bool = False,
    executor: SweepExecutor | None = None,
) -> Table6Result:
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    result = Table6Result()
    rows = executor.map(_model_task, [(name, reduced, top_n, machine) for name in models])
    for model_name, entries in zip(models, rows):
        for op_type, rec_time, s12_time in entries:
            result.entries.append(
                TopOpEntry(
                    model=model_name,
                    op_type=op_type,
                    recommendation_time=rec_time,
                    strategies_1_2_time=s12_time,
                )
            )
    return result


def format_report(result: Table6Result) -> str:
    table = TextTable(
        ["model", "operation", "recommendation (ms)", "strategies 1+2 (ms)", "speedup"],
        title="Table VI — top-5 most time-consuming operations, recommendation vs Strategies 1+2",
    )
    for entry in result.entries:
        table.add_row(
            [
                entry.model,
                entry.op_type,
                entry.recommendation_time * 1e3,
                entry.strategies_1_2_time * 1e3,
                f"{entry.speedup:.2f}",
            ]
        )
    return table.render()
