"""Figure 3: contribution of the four strategies and overall comparison.

The paper applies the strategies cumulatively — (a) Strategies 1+2 vs the
TensorFlow recommendation, (b) Strategy 3 on top of 1+2, (c) Strategy 4
on top of 3 — and finally (d) compares the full runtime against the
recommendation and against exhaustive manual tuning of the uniform
(intra-op, inter-op) parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.manual_opt import ManualOptimizer
from repro.core.runtime import StrategyComparison, TrainingRuntime
from repro.experiments.common import PAPER_MODELS, build_paper_model, experiment_machine, recorded
from repro.hardware.topology import Machine
from repro.sweep.executor import SweepExecutor, SweepTask, get_default_executor
from repro.utils.tables import TextTable

#: Speedups over the recommendation the paper reports in Fig. 3d.
PAPER_REFERENCE = {
    ("resnet50", "ours"): 1.49,
    ("resnet50", "manual"): 1.41,
    ("dcgan", "ours"): 1.34,
    ("dcgan", "manual"): 1.27,
    ("inception_v3", "ours"): 1.17,
    ("inception_v3", "manual"): 1.19,
    ("lstm", "ours"): 1.43,
    ("lstm", "manual"): 1.41,
    "average_improvement": 0.36,
}


@dataclass
class Fig3Result:
    comparisons: dict[str, StrategyComparison] = field(default_factory=dict)

    def speedups(self) -> dict[str, dict[str, float]]:
        return {name: cmp.speedups_vs_recommendation() for name, cmp in self.comparisons.items()}

    def increments(self) -> dict[str, dict[str, float]]:
        return {name: cmp.incremental_speedups() for name, cmp in self.comparisons.items()}


def _compare_task(
    model_name: str,
    reduced: bool,
    include_manual: bool,
    intra_candidates: tuple[int, ...] | None,
    inter_candidates: tuple[int, ...] | None,
    machine: Machine,
) -> StrategyComparison:
    """Full strategy-ablation ladder of one model (one sweep task)."""
    graph = build_paper_model(model_name, reduced=reduced)
    runtime = TrainingRuntime(machine)
    optimizer = None
    if include_manual:
        # The grid the paper's manual search explores (Table I plus the
        # smaller counts its per-model optima use), scaled to the
        # machine's core count — on KNL this is (2, 16, 34, 68, 136).
        cores = machine.topology.num_cores
        default_intra = tuple(sorted({2, 16, max(1, cores // 2), cores, cores * 2}))
        optimizer = ManualOptimizer(
            machine,
            intra_candidates=intra_candidates or default_intra,
            inter_candidates=inter_candidates or (1, 2, 4),
        )
    return runtime.compare_strategies(
        graph,
        include_manual=include_manual,
        manual_optimizer=optimizer,
    )


def _compare_with_optimizer(
    model_name: str,
    reduced: bool,
    include_manual: bool,
    optimizer: ManualOptimizer,
    machine: Machine,
) -> StrategyComparison:
    graph = build_paper_model(model_name, reduced=reduced)
    runtime = TrainingRuntime(machine)
    return runtime.compare_strategies(
        graph, include_manual=include_manual, manual_optimizer=optimizer
    )


@recorded("fig3")
def run(
    machine: str | Machine | None = None,
    *,
    models: tuple[str, ...] = PAPER_MODELS,
    include_manual: bool = True,
    reduced: bool = False,
    manual_optimizer: ManualOptimizer | None = None,
    executor: SweepExecutor | None = None,
) -> Fig3Result:
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    result = Fig3Result()
    if manual_optimizer is None:
        tasks = [
            SweepTask(_compare_task, (name, reduced, include_manual, None, None, machine))
            for name in models
        ]
    else:
        # A caller-supplied optimizer is shared mutable state: run those
        # comparisons locally and uncached.
        tasks = [
            SweepTask(
                _compare_with_optimizer,
                (name, reduced, include_manual, manual_optimizer, machine),
                cacheable=False,
            )
            for name in models
        ]
    for model_name, comparison in zip(models, executor.run(tasks)):
        result.comparisons[model_name] = comparison
    return result


def format_report(result: Fig3Result) -> str:
    table = TextTable(
        [
            "model",
            "S1+2 vs rec",
            "S3 vs S1+2",
            "S4 vs S3",
            "ours vs rec",
            "manual vs rec",
        ],
        title="Figure 3 — contribution of the scheduling strategies "
        "(speedups over the TensorFlow recommendation)",
    )
    for model_name, comparison in result.comparisons.items():
        speedups = comparison.speedups_vs_recommendation()
        increments = comparison.incremental_speedups()
        table.add_row(
            [
                model_name,
                f"{increments['strategies_1_2_vs_recommendation']:.2f}",
                f"{increments['strategy_3_vs_strategies_1_2']:.2f}",
                f"{increments['strategy_4_vs_strategy_3']:.2f}",
                f"{speedups['all_strategies']:.2f}",
                f"{speedups.get('manual', float('nan')):.2f}",
            ]
        )
    return table.render()
