"""Figure 1: execution time of three convolution operations versus threads.

The paper sweeps the thread count of ``Conv2DBackpropFilter``,
``Conv2DBackpropInput`` and ``Conv2D`` (with an Inception-v3 input size)
from 1 to 64 threads with threads that share data placed on the same tile,
and observes best performance at 26, 36 and 45 threads respectively —
i.e. well below the 68-thread recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execsim.standalone import StandaloneRunner
from repro.experiments.common import experiment_machine, motivation_conv_op, recorded
from repro.hardware.affinity import AffinityMode
from repro.hardware.topology import Machine
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

#: Optimal thread counts the paper reports for the three operations.
PAPER_REFERENCE = {
    "Conv2DBackpropFilter": 26,
    "Conv2DBackpropInput": 36,
    "Conv2D": 45,
    "max_variance_vs_68_threads": 0.173,
}

OPERATIONS: tuple[str, ...] = (
    "Conv2DBackpropFilter",
    "Conv2DBackpropInput",
    "Conv2D",
)

#: The Inception-v3 input size used in the figure.
INPUT_DIMS: tuple[int, int, int, int] = (32, 8, 8, 384)


@dataclass
class Fig1Result:
    """Time-vs-threads curves for the three operations."""

    thread_counts: tuple[int, ...]
    #: op type -> list of execution times (one per thread count), seconds.
    curves: dict[str, list[float]] = field(default_factory=dict)
    #: op type -> (optimal threads, optimal time).
    optima: dict[str, tuple[int, float]] = field(default_factory=dict)
    #: op type -> relative gap between 64/68-thread execution and optimum.
    variance_vs_max_threads: dict[str, float] = field(default_factory=dict)


def _curve_task(
    op_type: str,
    input_dims: tuple[int, int, int, int],
    thread_counts: tuple[int, ...],
    repeats: int,
    machine: Machine,
) -> list[float]:
    """Noise-free time-vs-threads curve of one operation (one sweep task)."""
    runner = StandaloneRunner(machine)
    op = motivation_conv_op(op_type, input_dims)
    return [
        runner.run(op, threads, AffinityMode.SHARED, repeats=repeats)
        for threads in thread_counts
    ]


@recorded("fig1")
def run(
    machine: str | Machine | None = None,
    *,
    thread_counts: tuple[int, ...] | None = None,
    repeats: int = 1000,
    executor: SweepExecutor | None = None,
) -> Fig1Result:
    """Sweep the three operations over ``thread_counts`` (shared affinity).

    ``thread_counts`` defaults to the paper's 2..64 sweep, clipped to the
    machine's core count on smaller zoo machines.
    """
    machine = experiment_machine(machine)
    if thread_counts is None:
        thread_counts = tuple(range(2, min(66, machine.topology.num_cores + 2), 2))
    executor = executor or get_default_executor()
    result = Fig1Result(thread_counts=thread_counts)
    curves = executor.map(
        _curve_task,
        [(op_type, INPUT_DIMS, tuple(thread_counts), repeats, machine) for op_type in OPERATIONS],
    )
    for op_type, times in zip(OPERATIONS, curves):
        result.curves[op_type] = times
        best_index = min(range(len(times)), key=times.__getitem__)
        result.optima[op_type] = (thread_counts[best_index], times[best_index])
        max_threads_time = times[-1]
        result.variance_vs_max_threads[op_type] = (
            (max_threads_time - times[best_index]) / max_threads_time
        )
    return result


def format_report(result: Fig1Result) -> str:
    table = TextTable(
        ["operation", "best threads", "best time (s)", "time @ max threads (s)", "variance"],
        title="Figure 1 — execution time vs intra-op parallelism "
        f"(input {INPUT_DIMS}, total of 1000 runs)",
    )
    for op_type, times in result.curves.items():
        best_threads, best_time = result.optima[op_type]
        table.add_row(
            [
                op_type,
                best_threads,
                best_time,
                times[-1],
                f"{result.variance_vs_max_threads[op_type] * 100:.1f}%",
            ]
        )
    return table.render()
