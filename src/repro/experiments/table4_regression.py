"""Table IV: accuracy of the regression-based performance models.

The paper trains a set of regressors on counter features collected from
ResNet-50, DCGAN and Inception-v3 operations (varying batch sizes) and
tests on DCGAN, for several numbers of profiling sample cases
N in {1, 4, 8, 16}.  The accuracy is mediocre (at best ~67%) — which is
why the hill-climbing model is used instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.regression_model import RegressionPerformanceModel
from repro.execsim.standalone import StandaloneRunner
from repro.experiments.common import build_paper_model, experiment_machine, recorded
from repro.models import build_model
from repro.graph.op import OpInstance
from repro.hardware.topology import Machine
from repro.mlkit import (
    GradientBoostingRegression,
    KNeighborsRegression,
    LinearRegression,
    PassiveAggressiveRegression,
    Regressor,
    TheilSenRegression,
)
from repro.sweep.executor import SweepExecutor, SweepTask, get_default_executor
from repro.utils.tables import TextTable

#: Accuracy the paper reports for N=4 (its most favourable setting).
PAPER_REFERENCE = {
    ("gradient_boosting", 4): 0.57,
    ("k_neighbors", 4): 0.67,
    ("tsr", 4): 0.17,
    ("ols", 4): 0.21,
    ("par", 4): 0.14,
    ("best_observed", 4): 0.67,
}

SAMPLE_COUNTS: tuple[int, ...] = (1, 4, 8, 16)


def default_regressor_factories(seed: int = 0) -> dict[str, Callable[[], Regressor]]:
    """The five regressors Table IV reports."""
    return {
        "gradient_boosting": lambda: GradientBoostingRegression(
            n_estimators=40, max_depth=3, seed=seed
        ),
        "k_neighbors": lambda: KNeighborsRegression(n_neighbors=3),
        "tsr": lambda: TheilSenRegression(max_subpopulation=100, seed=seed),
        "ols": lambda: LinearRegression(),
        "par": lambda: PassiveAggressiveRegression(max_iter=20, seed=seed),
    }


@dataclass
class Table4Result:
    #: (regressor name, num samples) -> paper accuracy metric.
    accuracy: dict[tuple[str, int], float] = field(default_factory=dict)
    #: (regressor name, num samples) -> R^2.
    r2: dict[tuple[str, int], float] = field(default_factory=dict)
    train_signatures: int = 0
    test_signatures: int = 0


def _training_ops(reduced: bool, max_ops: int) -> list[OpInstance]:
    """Training rows from ResNet-50, Inception-v3 and DCGAN operations.

    As in the paper, the training set spans all three CNN models (with a
    batch size different from the test configuration, mirroring the paper's
    batch-size sweep), so the DCGAN test operations are in-distribution but
    not identical.
    """
    ops: list[OpInstance] = []
    graphs = [
        build_paper_model("resnet50", reduced=reduced),
        build_paper_model("inception_v3", reduced=reduced),
        build_model("dcgan", batch_size=32),
    ]
    seen: set = set()
    per_graph = max(1, max_ops // len(graphs))
    for graph in graphs:
        taken = 0
        for op in graph:
            if taken >= per_graph or len(ops) >= max_ops:
                break
            if op.op_type.startswith("Conv2D") or op.op_type in ("MatMul", "MaxPooling", "AvgPool"):
                if op.signature not in seen:
                    seen.add(op.signature)
                    ops.append(op)
                    taken += 1
    return ops


def _test_ops(reduced: bool, max_ops: int) -> list[OpInstance]:
    graph = build_paper_model("dcgan", reduced=reduced)
    ops: list[OpInstance] = []
    seen: set = set()
    for op in graph:
        if op.op_type.startswith("Conv2D") or op.op_type in ("MatMul",):
            if op.signature not in seen:
                seen.add(op.signature)
                ops.append(op)
        if len(ops) >= max_ops:
            break
    return ops


def _evaluate_cell(
    factory: Callable[[], Regressor],
    num_samples: int,
    reduced: bool,
    max_train_ops: int,
    max_test_ops: int,
    seed: int,
    machine: Machine,
) -> tuple[float, float]:
    train_ops = _training_ops(reduced, max_train_ops)
    test_ops = _test_ops(reduced, max_test_ops)
    runner = StandaloneRunner(machine, noise_sigma=0.02, seed=seed)
    model = RegressionPerformanceModel(
        machine,
        regressor_factory=factory,
        num_samples=num_samples,
        seed=seed,
    )
    model.train(train_ops, runner)
    accuracy = model.evaluate(test_ops, runner)
    return accuracy.accuracy, accuracy.r2


def _cell_task(
    regressor_name: str,
    num_samples: int,
    reduced: bool,
    max_train_ops: int,
    max_test_ops: int,
    seed: int,
    machine: Machine,
) -> tuple[float, float]:
    """Train/evaluate one (regressor, N) cell — the parallel/cached unit.

    The regressor is selected by name from the default factories so the
    task stays picklable and content-hashable; each cell gets its own
    measurement runner (seeded identically), making the cell a pure
    function of its arguments regardless of execution order.
    """
    factory = default_regressor_factories(seed)[regressor_name]
    return _evaluate_cell(
        factory, num_samples, reduced, max_train_ops, max_test_ops, seed, machine
    )


@recorded("table4")
def run(
    machine: str | Machine | None = None,
    *,
    sample_counts: tuple[int, ...] = SAMPLE_COUNTS,
    regressors: Mapping[str, Callable[[], Regressor]] | None = None,
    reduced: bool = True,
    max_train_ops: int = 40,
    max_test_ops: int = 16,
    seed: int = 0,
    executor: SweepExecutor | None = None,
) -> Table4Result:
    """Train the per-case regressors and evaluate them on DCGAN operations.

    With the default regressors every (regressor, N) cell is fanned out
    as a named, cacheable sweep task.  A custom ``regressors`` mapping
    (arbitrary factories, typically closures) still works: those cells
    run locally and uncached, since closures can neither be shipped to
    process workers nor content-hashed.
    """
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    train_ops = _training_ops(reduced, max_train_ops)
    test_ops = _test_ops(reduced, max_test_ops)
    result = Table4Result(train_signatures=len(train_ops), test_signatures=len(test_ops))
    # An empty/None mapping falls back to the default factories, as the
    # original `regressors or default_regressor_factories(seed)` did.
    if not regressors:
        regressors = None
    names = list(regressors) if regressors is not None else list(default_regressor_factories(seed))
    cells = [(name, num_samples) for name in names for num_samples in sample_counts]
    if regressors is None:
        tasks = [
            SweepTask(
                _cell_task,
                (name, num_samples, reduced, max_train_ops, max_test_ops, seed, machine),
            )
            for name, num_samples in cells
        ]
    else:
        tasks = [
            SweepTask(
                _evaluate_cell,
                (
                    regressors[name],
                    num_samples,
                    reduced,
                    max_train_ops,
                    max_test_ops,
                    seed,
                    machine,
                ),
                cacheable=False,
            )
            for name, num_samples in cells
        ]
    outcomes = executor.run(tasks)
    for (name, num_samples), (accuracy, r2) in zip(cells, outcomes):
        result.accuracy[(name, num_samples)] = accuracy
        result.r2[(name, num_samples)] = r2
    return result


def format_report(result: Table4Result) -> str:
    names = sorted({name for name, _ in result.accuracy})
    samples = sorted({n for _, n in result.accuracy})
    table = TextTable(
        ["#samples (N)", "metric"] + names,
        title="Table IV — prediction accuracy of the regression models",
    )
    for n in samples:
        table.add_row(
            [n, "accuracy"] + [f"{result.accuracy[(name, n)] * 100:.0f}%" for name in names]
        )
        table.add_row(
            [n, "R2"] + [f"{result.r2[(name, n)]:.3f}" for name in names]
        )
    return table.render()
