"""Table II: the optimal intra-op parallelism depends on the input size.

For three convolution operations and three Inception-v3 input sizes the
paper finds the best thread count per (operation, size): the optimum grows
with the input size (e.g. 26 -> 42 -> 68 threads for
``Conv2DBackpropFilter``) and the penalty of simply using 68 threads
shrinks accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execsim.standalone import StandaloneRunner
from repro.experiments.common import experiment_machine, motivation_conv_op, recorded
from repro.hardware.affinity import AffinityMode
from repro.hardware.topology import Machine
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

#: (op, input size) -> optimal threads reported by the paper.
PAPER_REFERENCE = {
    ("Conv2DBackpropFilter", (32, 8, 8, 384)): 26,
    ("Conv2DBackpropFilter", (32, 17, 17, 384)): 42,
    ("Conv2DBackpropFilter", (32, 8, 8, 2048)): 68,
    ("Conv2DBackpropInput", (32, 8, 8, 384)): 36,
    ("Conv2DBackpropInput", (32, 17, 17, 384)): 56,
    ("Conv2DBackpropInput", (32, 8, 8, 2048)): 68,
    ("Conv2D", (32, 8, 8, 384)): 45,
    ("Conv2D", (32, 17, 17, 384)): 63,
    ("Conv2D", (32, 8, 8, 2048)): 66,
}

OPERATIONS: tuple[str, ...] = (
    "Conv2DBackpropFilter",
    "Conv2DBackpropInput",
    "Conv2D",
)
INPUT_SIZES: tuple[tuple[int, int, int, int], ...] = (
    (32, 8, 8, 384),
    (32, 17, 17, 384),
    (32, 8, 8, 2048),
)


@dataclass(frozen=True)
class InputSizeEntry:
    op_type: str
    input_dims: tuple[int, int, int, int]
    best_threads: int
    best_time: float
    time_at_max_threads: float

    @property
    def performance_variance(self) -> float:
        """Relative gap between the 68-thread run and the optimum."""
        if self.time_at_max_threads <= 0:
            return 0.0
        return (self.time_at_max_threads - self.best_time) / self.time_at_max_threads


@dataclass
class Table2Result:
    entries: list[InputSizeEntry] = field(default_factory=list)

    def entry(self, op_type: str, input_dims: tuple[int, int, int, int]) -> InputSizeEntry:
        for entry in self.entries:
            if entry.op_type == op_type and entry.input_dims == input_dims:
                return entry
        raise KeyError((op_type, input_dims))


def _entry_task(
    op_type: str, dims: tuple[int, int, int, int], machine: Machine
) -> tuple[int, float, float]:
    """Best configuration and time-at-max-threads of one (op, size) cell."""
    runner = StandaloneRunner(machine)
    op = motivation_conv_op(op_type, dims)
    best_threads, _, best_time = runner.best_configuration(op)
    at_max = runner.measure(op, machine.topology.num_cores, AffinityMode.SHARED).total
    return best_threads, best_time, at_max


@recorded("table2")
def run(
    machine: str | Machine | None = None,
    *,
    operations: tuple[str, ...] = OPERATIONS,
    input_sizes: tuple[tuple[int, int, int, int], ...] = INPUT_SIZES,
    executor: SweepExecutor | None = None,
) -> Table2Result:
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    result = Table2Result()
    cells = [(op_type, dims) for op_type in operations for dims in input_sizes]
    outcomes = executor.map(_entry_task, [(op_type, dims, machine) for op_type, dims in cells])
    for (op_type, dims), (best_threads, best_time, at_max) in zip(cells, outcomes):
        result.entries.append(
            InputSizeEntry(
                op_type=op_type,
                input_dims=dims,
                best_threads=best_threads,
                best_time=best_time,
                time_at_max_threads=at_max,
            )
        )
    return result


def format_report(result: Table2Result) -> str:
    table = TextTable(
        ["operation", "input size", "best threads", "best time (ms)", "variance vs 68 threads"],
        title="Table II — impact of the input data size on the optimal intra-op parallelism",
    )
    for entry in result.entries:
        table.add_row(
            [
                entry.op_type,
                str(entry.input_dims),
                entry.best_threads,
                entry.best_time * 1e3,
                f"{entry.performance_variance * 100:.1f}%",
            ]
        )
    return table.render()
