"""Shared fixtures for the experiment modules."""

from __future__ import annotations

from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.hardware.knl import knl_machine
from repro.hardware.topology import Machine
from repro.hardware.zoo import resolve_machine
from repro.models.registry import build_model, build_reduced_model

#: The models the paper evaluates, in its reporting order.
PAPER_MODELS: tuple[str, ...] = ("resnet50", "dcgan", "inception_v3", "lstm")


def default_machine() -> Machine:
    """The simulated KNL node experiments use unless told otherwise."""
    return knl_machine()


def experiment_machine(machine: str | Machine | None) -> Machine:
    """Resolve an experiment's ``machine`` argument.

    Accepts a ready :class:`Machine`, a machine-zoo name (the CLI's
    ``--machine`` flag forwards the name unresolved so experiment task
    functions stay picklable either way), or ``None`` for the paper's
    KNL node.
    """
    return resolve_machine(machine)


def motivation_conv_op(
    op_type: str,
    input_dims: tuple[int, int, int, int],
    *,
    out_channels: int | None = None,
    name: str | None = None,
) -> OpInstance:
    """One of the standalone convolution operations of Section II-C.

    The paper uses input sizes from Inception-v3, e.g. ``(32, 8, 8, 384)``,
    for ``Conv2D``, ``Conv2DBackpropInput`` and ``Conv2DBackpropFilter``.
    """
    n, h, w, c = input_dims
    k = out_channels if out_channels is not None else c
    activation = TensorShape((n, h, w, c))
    gradient = TensorShape((n, h, w, k))
    attrs = {"kernel": (3, 3), "stride": 1}
    label = name or f"{op_type}_{n}x{h}x{w}x{c}"
    if op_type == "Conv2D":
        return OpInstance(label, op_type, (activation,), gradient, attrs=attrs)
    if op_type == "Conv2DBackpropFilter":
        return OpInstance(
            label, op_type, (activation, gradient), TensorShape((3, 3, c, k)), attrs=attrs
        )
    if op_type == "Conv2DBackpropInput":
        return OpInstance(label, op_type, (activation, gradient), activation, attrs=attrs)
    raise ValueError(f"unsupported motivation op type: {op_type}")


def build_paper_model(name: str, *, reduced: bool = False):
    """Build one of the paper's model graphs.

    ``reduced=True`` shrinks the deepest models so fast iterations (tests,
    benchmark warm-ups) stay cheap while preserving the op-type mix.
    """
    if not reduced:
        return build_model(name)
    return build_reduced_model(name)
