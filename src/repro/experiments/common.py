"""Shared fixtures for the experiment modules."""

from __future__ import annotations

import functools
import inspect
import sys

from repro.graph.op import OpInstance
from repro.graph.shapes import TensorShape
from repro.hardware.knl import knl_machine
from repro.hardware.topology import Machine
from repro.hardware.zoo import resolve_machine
from repro.models.registry import build_model, build_reduced_model

#: The models the paper evaluates, in its reporting order.
PAPER_MODELS: tuple[str, ...] = ("resnet50", "dcgan", "inception_v3", "lstm")


def default_machine() -> Machine:
    """The simulated KNL node experiments use unless told otherwise."""
    return knl_machine()


def experiment_machine(machine: str | Machine | None) -> Machine:
    """Resolve an experiment's ``machine`` argument.

    Accepts a ready :class:`Machine`, a machine-zoo name (the CLI's
    ``--machine`` flag forwards the name unresolved so experiment task
    functions stay picklable either way), or ``None`` for the paper's
    KNL node.
    """
    return resolve_machine(machine)


def motivation_conv_op(
    op_type: str,
    input_dims: tuple[int, int, int, int],
    *,
    out_channels: int | None = None,
    name: str | None = None,
) -> OpInstance:
    """One of the standalone convolution operations of Section II-C.

    The paper uses input sizes from Inception-v3, e.g. ``(32, 8, 8, 384)``,
    for ``Conv2D``, ``Conv2DBackpropInput`` and ``Conv2DBackpropFilter``.
    """
    n, h, w, c = input_dims
    k = out_channels if out_channels is not None else c
    activation = TensorShape((n, h, w, c))
    gradient = TensorShape((n, h, w, k))
    attrs = {"kernel": (3, 3), "stride": 1}
    label = name or f"{op_type}_{n}x{h}x{w}x{c}"
    if op_type == "Conv2D":
        return OpInstance(label, op_type, (activation,), gradient, attrs=attrs)
    if op_type == "Conv2DBackpropFilter":
        return OpInstance(
            label, op_type, (activation, gradient), TensorShape((3, 3, c, k)), attrs=attrs
        )
    if op_type == "Conv2DBackpropInput":
        return OpInstance(label, op_type, (activation, gradient), activation, attrs=attrs)
    raise ValueError(f"unsupported motivation op type: {op_type}")


def build_paper_model(name: str, *, reduced: bool = False):
    """Build one of the paper's model graphs.

    ``reduced=True`` shrinks the deepest models so fast iterations (tests,
    benchmark warm-ups) stay cheap while preserving the op-type mix.
    """
    if not reduced:
        return build_model(name)
    return build_reduced_model(name)


def recorded(name: str):
    """Decorate an experiment's ``run`` to record it in the run store.

    After a successful run, the call's bound arguments become the
    record's config (identity), the result dataclass becomes the
    payload, and the rendered ``format_report`` text rides along in
    extras so ``python -m repro report table <id>`` can replay the
    table without re-simulating.  A no-op unless the process-default
    store records (``$REPRO_STORE_DIR`` set, or the CLI's
    ``configure_store``); recording problems never fail the experiment.
    ``functools.wraps`` preserves the signature the CLI forwards
    options by.
    """

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            result = func(*args, **kwargs)
            _record_experiment(name, func, args, kwargs, result)
            return result

        return wrapper

    return decorate


def _record_experiment(name: str, func, args, kwargs, result) -> None:
    from repro.sweep.executor import EnvironmentConfigError

    try:
        from repro.store import (
            RecordingError,
            default_store,
            jsonify,
            record_run,
            store_disabled,
        )

        store = default_store()
        if not store.enabled or store_disabled():
            return
        bound = inspect.signature(func).bind(*args, **kwargs)
        bound.apply_defaults()
        config: dict = {}
        skipped: list[str] = []
        for key, value in bound.arguments.items():
            if key == "executor":
                continue  # runtime plumbing, not experiment configuration
            try:
                config[key] = jsonify(value)
            except RecordingError:
                skipped.append(key)
        try:
            payload = jsonify(result)
        except RecordingError:
            return
        if not isinstance(payload, dict):
            payload = {"result": payload}
        extras: dict = {}
        if skipped:
            extras["skipped_args"] = sorted(skipped)
        formatter = getattr(sys.modules.get(func.__module__), "format_report", None)
        if formatter is not None:
            try:
                extras["report"] = formatter(result)
            except Exception:
                pass
        record_run(store, "experiment", name, config=config, payload=payload, extras=extras)
    except EnvironmentConfigError:
        raise  # a garbage $REPRO_STORE_* value is a user error, surface it
    except Exception:
        pass  # recording is a side channel; never fail the experiment
