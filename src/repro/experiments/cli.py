"""Command-line entry point: ``repro-experiments [names...]``.

Runs any subset of the paper's experiments (default: the cheap ones) and
prints their reports.  ``repro-experiments --list`` shows what is
available; ``repro-experiments all`` runs everything (several minutes).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments import ALL_EXPERIMENTS

#: Experiments cheap enough for a default invocation.
DEFAULT_SET: tuple[str, ...] = ("fig1", "table2", "table3", "fig5", "table7")


def _run_one(name: str, *, reduced: bool) -> str:
    module = ALL_EXPERIMENTS[name]
    kwargs = {}
    # Experiments accepting a `reduced` flag get it forwarded.
    if "reduced" in module.run.__code__.co_varnames:
        kwargs["reduced"] = reduced
    result = module.run(**kwargs)
    return module.format_report(result)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the paper on the simulated substrate.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(DEFAULT_SET),
        help="experiment names (e.g. fig1 table3), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full-size model graphs (slower, closer to the paper's scale)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = list(args.experiments)
    if names == ["all"] or names == ["ALL"]:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    for name in names:
        start = time.time()
        report = _run_one(name, reduced=not args.full)
        elapsed = time.time() - start
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(report)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
