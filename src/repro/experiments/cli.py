"""Command-line entry point: ``repro-experiments [names...]``.

Runs any subset of the paper's experiments (default: the cheap ones) and
prints their reports.  ``repro-experiments --list`` shows what is
available; ``repro-experiments all`` runs everything (several minutes).

Every experiment accepts an arbitrary hardware topology:
``--machine <zoo-name>`` picks one from the machine zoo
(``--list-machines`` enumerates them) and ``--scenario <name>`` reuses a
registered scenario's machine (``--list-scenarios``).  The ``fleet``
experiment additionally takes ``--policy``, ``--machines``,
``--trace-seed`` and the trace-scaling knobs ``--num-jobs`` /
``--steps MIN:MAX`` / ``--mean-interarrival`` — reproducible
thousand-job traces straight from the command line — plus the open-loop
knobs ``--arrival-process`` (``--list-arrival-specs``), the
admission-control trio ``--queue-limit`` / ``--deadline`` /
``--shed-policy``, and the sharded-engine pair ``--shards`` /
``--fleet-backend`` (parallel machine-group simulation, byte-identical
to the single-process path).

The experiments execute on the parallel sweep engine: ``--jobs``/
``--backend`` control the fan-out (``--jobs N`` alone implies the
process backend) and ``--no-cache``/``--cache-dir`` control the on-disk
result cache that makes repeated invocations nearly instant.
``--no-store``/``--store-dir`` control the persistent run store every
invocation is recorded in (replay stored runs with
``python -m repro report``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from typing import Sequence

from repro.experiments import ALL_EXPERIMENTS
from repro.hardware.zoo import available_machines, describe_zoo, machine_specs
from repro.scenarios import describe_scenarios, get_scenario, scenario_specs
from repro.sweep import BACKENDS, SweepCache, SweepExecutor, get_default_executor
from repro.sweep.executor import EnvironmentConfigError, no_cache_requested

#: Experiments cheap enough for a default invocation.
DEFAULT_SET: tuple[str, ...] = ("fig1", "table2", "table3", "fig5", "table7")


def _run_one(
    name: str,
    *,
    reduced: bool,
    executor: SweepExecutor | None = None,
    machine: str | None = None,
    policy: str | None = None,
    machines: tuple[str, ...] | None = None,
    arrival_seed: int | None = None,
    num_jobs: int | None = None,
    steps: tuple[int, int] | None = None,
    fault_plan: str | None = None,
    fault_seed: int | None = None,
    crash_rate: float | None = None,
    straggler_rate: float | None = None,
    mean_interarrival: float | None = None,
    arrival_process: str | None = None,
    queue_limit: int | None = None,
    deadline: float | None = None,
    shed_policy: str | None = None,
    shards: int | None = None,
    fleet_backend: str | None = None,
) -> str:
    module = ALL_EXPERIMENTS[name]
    # Forward only the options the experiment's run() accepts.  Inspect
    # the signature (not __code__.co_varnames, which breaks on wrapped or
    # decorated functions) so experiment modules stay free to evolve.
    parameters = inspect.signature(module.run).parameters
    kwargs = {}
    if "reduced" in parameters:
        kwargs["reduced"] = reduced
    if "executor" in parameters and executor is not None:
        kwargs["executor"] = executor
    if "machine" in parameters and machine is not None:
        # Forward the zoo *name*: experiment_machine() resolves it, and a
        # name stays trivially picklable for the process backend.
        kwargs["machine"] = machine
    # Fleet-only options (repro-experiments fleet --policy/--machines/...).
    if "policies" in parameters and policy is not None:
        kwargs["policies"] = (policy,)
    if "machines" in parameters and machines is not None:
        kwargs["machines"] = machines
    if "arrival_seed" in parameters and arrival_seed is not None:
        kwargs["arrival_seed"] = arrival_seed
    if "num_jobs" in parameters and num_jobs is not None:
        kwargs["num_jobs"] = num_jobs
    if steps is not None and "min_steps" in parameters and "max_steps" in parameters:
        kwargs["min_steps"], kwargs["max_steps"] = steps
    if "fault_plan" in parameters and fault_plan is not None:
        kwargs["fault_plan"] = fault_plan
    if "fault_seed" in parameters and fault_seed is not None:
        kwargs["fault_seed"] = fault_seed
    if "crash_rate" in parameters and crash_rate is not None:
        kwargs["crash_rate"] = crash_rate
    if "straggler_rate" in parameters and straggler_rate is not None:
        kwargs["straggler_rate"] = straggler_rate
    if "mean_interarrival" in parameters and mean_interarrival is not None:
        kwargs["mean_interarrival"] = mean_interarrival
    if "arrival_process" in parameters and arrival_process is not None:
        kwargs["arrival_process"] = arrival_process
    if "queue_limit" in parameters and queue_limit is not None:
        kwargs["queue_limit"] = queue_limit
    if "deadline" in parameters and deadline is not None:
        kwargs["deadline"] = deadline
    if "shed_policy" in parameters and shed_policy is not None:
        kwargs["shed_policy"] = shed_policy
    if "shards" in parameters and shards is not None:
        kwargs["shards"] = shards
    if "fleet_backend" in parameters and fleet_backend is not None:
        kwargs["fleet_backend"] = fleet_backend
    result = module.run(**kwargs)
    return module.format_report(result)


def _parse_steps(spec: str) -> tuple[int, int]:
    """Parse ``--steps``: ``"N"`` (fixed) or ``"MIN:MAX"`` (range)."""
    try:
        if ":" in spec:
            low_text, high_text = spec.split(":", 1)
            low, high = int(low_text), int(high_text)
        else:
            low = high = int(spec)
    except ValueError:
        raise ValueError(f"--steps expects N or MIN:MAX, got {spec!r}") from None
    if not 1 <= low <= high:
        raise ValueError(f"--steps needs 1 <= MIN <= MAX, got {spec!r}")
    return low, high


def _build_executor(args: argparse.Namespace) -> SweepExecutor:
    backend = args.backend
    if backend is None:
        # An explicit --jobs asks for real parallelism; otherwise keep
        # whatever the environment/default configuration says.
        backend = "process" if args.jobs and args.jobs > 1 else None
    default = get_default_executor()
    # The CLI caches by default (under .sweep_cache / $REPRO_SWEEP_CACHE_DIR)
    # so repeated invocations are nearly instant; --no-cache or the
    # $REPRO_SWEEP_NO_CACHE env var opt out.
    if args.no_cache or no_cache_requested():
        cache = SweepCache(enabled=False)
    else:
        cache = SweepCache(args.cache_dir)
    return SweepExecutor(
        backend if backend is not None else default.backend,
        jobs=args.jobs if args.jobs else default.jobs,
        cache=cache,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the paper on the simulated substrate.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(DEFAULT_SET),
        help="experiment names (e.g. fig1 table3), or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--list-machines",
        action="store_true",
        help="list the machine zoo (usable with --machine)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered scenarios (usable with --scenario)",
    )
    parser.add_argument(
        "--machine",
        default=None,
        metavar="NAME",
        help="run the experiments on this machine-zoo topology "
        "(default: the paper's KNL node; see --list-machines)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="run the experiments on a registered scenario's machine "
        "(see --list-scenarios); mutually exclusive with --machine",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit --list / --list-machines / --list-scenarios as sorted "
        "JSON specs (for --list: experiment name -> accepted run() options)",
    )
    parser.add_argument(
        "--policy",
        default=None,
        metavar="NAME",
        help="fleet experiment only: restrict the policy comparison to one "
        "placement policy (first-fit, load-balanced, interference-aware)",
    )
    parser.add_argument(
        "--machines",
        default=None,
        metavar="NAMES",
        help="fleet experiment only: comma-separated zoo machines forming "
        "the fleet (default: the five-machine reference fleet)",
    )
    parser.add_argument(
        "--trace-seed",
        "--arrival-seed",
        dest="arrival_seed",
        type=int,
        default=None,
        metavar="N",
        help="fleet experiment only: seed of the generated job trace "
        "(--arrival-seed is an alias)",
    )
    parser.add_argument(
        "--num-jobs",
        type=int,
        default=None,
        metavar="N",
        help="fleet experiment only: number of jobs in the generated trace "
        "(large traces stay interactive on the round-compression fast path)",
    )
    parser.add_argument(
        "--steps",
        default=None,
        metavar="MIN:MAX",
        help="fleet experiment only: per-job training-step range of the "
        "generated trace (a single N fixes every job's length)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="fleet experiment only: inject a deterministic fault plan — a "
        "registered fault-spec name (see --list-fault-plans), a JSON object, "
        "or a path to a JSON file",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="N",
        help="fleet experiment only: seed of a generated random fault plan "
        "(combine with --crash-rate / --straggler-rate)",
    )
    parser.add_argument(
        "--crash-rate",
        type=float,
        default=None,
        metavar="P",
        help="fleet experiment only: per-machine crash probability of the "
        "generated fault plan (0..1)",
    )
    parser.add_argument(
        "--straggler-rate",
        type=float,
        default=None,
        metavar="P",
        help="fleet experiment only: per-machine straggler-window probability "
        "of the generated fault plan (0..1)",
    )
    parser.add_argument(
        "--list-fault-plans",
        action="store_true",
        help="list the registered fault-plan specs (usable with --fault-plan)",
    )
    parser.add_argument(
        "--mean-interarrival",
        type=float,
        default=None,
        metavar="S",
        help="fleet experiment only: mean seconds between job arrivals "
        "(smaller = heavier offered load)",
    )
    parser.add_argument(
        "--arrival-process",
        default=None,
        metavar="SPEC",
        help="fleet experiment only: stream an open-loop arrival process — a "
        "registered arrival-spec name (see --list-arrival-specs), a JSON "
        "object, or a path to a JSON file; the trace is never materialised",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        metavar="N",
        help="fleet experiment only: admission control — bound the central "
        "queue at N jobs and shed the overflow",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="fleet experiment only: admission control — shed jobs still "
        "queued S seconds after arrival (with --shed-policy deadline-expire)",
    )
    parser.add_argument(
        "--shed-policy",
        choices=("reject-at-arrival", "drop-oldest", "deadline-expire"),
        default=None,
        help="fleet experiment only: how admission control sheds under "
        "overload (default: reject-at-arrival)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="fleet experiment only: advance the fleet as N independent "
        "machine shards between synchronisation points (byte-identical to "
        "the default single-process path)",
    )
    parser.add_argument(
        "--fleet-backend",
        choices=BACKENDS,
        default=None,
        help="fleet experiment only: execution backend for shard windows "
        "(default: serial; use process with --shards to parallelise across "
        "cores)",
    )
    parser.add_argument(
        "--list-arrival-specs",
        action="store_true",
        help="list the registered arrival-process specs (usable with "
        "--arrival-process)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the full-size model graphs (slower, closer to the paper's scale)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="fan sweep tasks out over N workers (implies --backend process)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="sweep executor backend (default: serial, or $REPRO_SWEEP_BACKEND)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything, ignoring the on-disk sweep result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="sweep cache location (default: .sweep_cache, or $REPRO_SWEEP_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="do not record runs in the persistent run store",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="run-store location (default: .run_store, or $REPRO_STORE_DIR)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.num_jobs is not None and args.num_jobs < 0:
        parser.error("--num-jobs must be non-negative")
    if args.mean_interarrival is not None and args.mean_interarrival <= 0:
        parser.error("--mean-interarrival must be positive")
    if args.queue_limit is not None and args.queue_limit < 1:
        parser.error("--queue-limit must be at least 1")
    if args.deadline is not None and args.deadline <= 0:
        parser.error("--deadline must be positive")
    for rate_flag, rate_value in (
        ("--crash-rate", args.crash_rate),
        ("--straggler-rate", args.straggler_rate),
    ):
        if rate_value is not None and not 0.0 <= rate_value <= 1.0:
            parser.error(f"{rate_flag} must be in [0, 1]")
    if args.machine is not None and args.scenario is not None:
        parser.error("--machine and --scenario are mutually exclusive")
    steps: tuple[int, int] | None = None
    if args.steps is not None:
        try:
            steps = _parse_steps(args.steps)
        except ValueError as exc:
            parser.error(str(exc))

    if args.list:
        if args.json:
            # name -> the run() options each experiment accepts, so tools
            # can discover e.g. the fleet experiment's trace knobs.
            listing = {
                name: sorted(
                    p
                    for p in inspect.signature(module.run).parameters
                    if p != "executor"
                )
                for name, module in ALL_EXPERIMENTS.items()
            }
            print(json.dumps(listing, indent=2, sort_keys=True))
        else:
            for name in ALL_EXPERIMENTS:
                print(name)
        return 0
    if args.list_machines:
        if args.json:
            print(json.dumps(machine_specs(), indent=2, sort_keys=True))
        else:
            print(describe_zoo())
        return 0
    if args.list_scenarios:
        if args.json:
            print(json.dumps(scenario_specs(), indent=2, sort_keys=True))
        else:
            print(describe_scenarios())
        return 0
    if args.list_fault_plans:
        from repro.scenarios import FAULT_SPECS, describe_fault_specs

        if args.json:
            print(json.dumps(FAULT_SPECS, indent=2, sort_keys=True))
        else:
            print(describe_fault_specs())
        return 0
    if args.list_arrival_specs:
        from repro.scenarios import ARRIVAL_SPECS, describe_arrival_specs

        if args.json:
            print(json.dumps(ARRIVAL_SPECS, indent=2, sort_keys=True))
        else:
            print(describe_arrival_specs())
        return 0

    fleet_machines: tuple[str, ...] | None = None
    if args.machines is not None:
        fleet_machines = tuple(
            name.strip() for name in args.machines.split(",") if name.strip()
        )
        unknown_machines = [
            name for name in fleet_machines if name not in available_machines()
        ]
        if not fleet_machines or unknown_machines:
            print(
                f"--machines must name zoo machines (unknown: "
                f"{', '.join(unknown_machines) or '<empty>'}); available: "
                f"{', '.join(available_machines())}",
                file=sys.stderr,
            )
            return 2
    if args.policy is not None:
        from repro.fleet import available_policies

        if args.policy not in available_policies():
            print(
                f"unknown policy {args.policy!r}; available: "
                f"{', '.join(available_policies())}",
                file=sys.stderr,
            )
            return 2

    machine = args.machine
    if args.scenario is not None:
        try:
            machine = get_scenario(args.scenario).machine
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    if machine is not None and machine not in available_machines():
        print(
            f"unknown machine {machine!r}; available: "
            f"{', '.join(available_machines())}",
            file=sys.stderr,
        )
        return 2

    names = list(args.experiments)
    if names == ["all"] or names == ["ALL"]:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    try:
        executor = _build_executor(args)
        # Like the cache, the CLI records runs by default (under
        # .run_store / $REPRO_STORE_DIR) so every invocation is
        # replayable via `python -m repro report`; --no-store or
        # $REPRO_STORE_DISABLE opt out.
        from repro.store import configure_store, store_disabled

        if args.no_store or store_disabled():
            configure_store(enabled=False)
        else:
            configure_store(args.store_dir, enabled=True)
    except EnvironmentConfigError as exc:
        # A malformed $REPRO_SWEEP_* / $REPRO_STORE_* variable gets the
        # same clean one-line diagnosis as an unknown --machine, not a
        # traceback.
        print(str(exc), file=sys.stderr)
        return 2
    try:
        for name in names:
            start = time.time()
            report = _run_one(
                name,
                reduced=not args.full,
                executor=executor,
                machine=machine,
                policy=args.policy,
                machines=fleet_machines,
                arrival_seed=args.arrival_seed,
                num_jobs=args.num_jobs,
                steps=steps,
                fault_plan=args.fault_plan,
                fault_seed=args.fault_seed,
                crash_rate=args.crash_rate,
                straggler_rate=args.straggler_rate,
                mean_interarrival=args.mean_interarrival,
                arrival_process=args.arrival_process,
                queue_limit=args.queue_limit,
                deadline=args.deadline,
                shed_policy=args.shed_policy,
                shards=args.shards,
                fleet_backend=args.fleet_backend,
            )
            elapsed = time.time() - start
            suffix = f" @ {machine}" if machine is not None else ""
            print(f"=== {name}{suffix} ({elapsed:.1f}s) ===")
            print(report)
            print()
    finally:
        executor.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
