"""Table III: three ways of running two operations.

The paper co-runs ``Conv2DBackpropFilter`` and ``Conv2DBackpropInput``
(input (32, 8, 8, 2048)) under three strategies: serial execution with 68
threads each, co-running on the hyper-threads of the same 68 cores, and
co-running on a 34/34 split of the physical cores.  The split wins (38%
faster than serial) even though each individual operation runs slower.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execsim.simulator import PlacementKind
from repro.execsim.standalone import StandaloneConfig, StandaloneRunner
from repro.experiments.common import experiment_machine, motivation_conv_op, recorded
from repro.hardware.topology import Machine
from repro.sweep.executor import SweepExecutor, get_default_executor
from repro.utils.tables import TextTable

PAPER_REFERENCE = {
    "serial": 1.0,
    "hyperthreading": 1.03,
    "split_cores": 1.38,
}

INPUT_DIMS: tuple[int, int, int, int] = (32, 8, 8, 2048)


@dataclass(frozen=True)
class Table3Result:
    serial_time: float
    hyperthreading_time: float
    split_time: float
    #: Physical cores of the machine the strategies ran on (drives the
    #: thread counts shown in the report; 68 on the paper's KNL).
    cores: int = 68
    #: False on SMT-less machines, where the hyper-threading strategy
    #: degenerates to serial execution (no secondary slots exist).
    smt_available: bool = True

    @property
    def hyperthreading_speedup(self) -> float:
        return self.serial_time / self.hyperthreading_time

    @property
    def split_speedup(self) -> float:
        return self.serial_time / self.split_time


def _corun_task(strategy: str, machine: Machine) -> float:
    """Step time of one co-running strategy (serial / hyper / split)."""
    runner = StandaloneRunner(machine)
    cores = machine.topology.num_cores
    filter_op = motivation_conv_op("Conv2DBackpropFilter", INPUT_DIMS, name="filter_grad")
    input_op = motivation_conv_op("Conv2DBackpropInput", INPUT_DIMS, name="input_grad")
    if strategy == "serial" or (
        strategy == "hyper" and machine.topology.smt_per_core < 2
    ):
        # Without SMT there are no secondary slots to ride; the paper's
        # hyper-threading strategy physically degenerates to serial runs.
        result = runner.corun(
            [
                StandaloneConfig(filter_op, cores),
                StandaloneConfig(input_op, cores),
            ],
            serialize=True,
        )
    elif strategy == "hyper":
        # Hyper-threading co-run: the first op owns the primary SMT slot of
        # every core, the second rides the secondary slots of the same cores.
        result = runner.corun(
            [
                StandaloneConfig(filter_op, cores, placement=PlacementKind.DEDICATED),
                StandaloneConfig(input_op, cores, placement=PlacementKind.HYPERTHREAD),
            ]
        )
    elif strategy == "split":
        result = runner.corun(
            [
                StandaloneConfig(filter_op, max(1, cores // 2)),
                StandaloneConfig(input_op, max(1, cores // 2)),
            ]
        )
    else:
        raise ValueError(f"unknown co-run strategy: {strategy}")
    return result.step_time


@recorded("table3")
def run(
    machine: str | Machine | None = None,
    *,
    repeats: int = 1000,
    executor: SweepExecutor | None = None,
) -> Table3Result:
    machine = experiment_machine(machine)
    executor = executor or get_default_executor()
    serial, hyper, split = executor.map(
        _corun_task, [(strategy, machine) for strategy in ("serial", "hyper", "split")]
    )
    scale = float(repeats)
    return Table3Result(
        serial_time=serial * scale,
        hyperthreading_time=hyper * scale,
        split_time=split * scale,
        cores=machine.topology.num_cores,
        smt_available=machine.topology.smt_per_core >= 2,
    )


def format_report(result: Table3Result) -> str:
    table = TextTable(
        ["strategy", "#threads", "time (s)", "speedup"],
        title="Table III — co-running two operations (total of 1000 runs)",
    )
    cores = result.cores
    half = max(1, cores // 2)
    ht_label = (
        f"{cores}+{cores}" if result.smt_available else f"{cores} (no SMT: serial)"
    )
    table.add_row(["Serial execution", str(cores), result.serial_time, 1.0])
    table.add_row(
        ["Co-run with hyper-threading", ht_label, result.hyperthreading_time,
         result.hyperthreading_speedup]
    )
    table.add_row(
        ["Co-run with threads control", f"{half}+{half}", result.split_time,
         result.split_speedup]
    )
    return table.render()
