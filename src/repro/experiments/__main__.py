"""``python -m repro.experiments`` — same CLI as ``repro-experiments``."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
