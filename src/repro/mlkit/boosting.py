"""Gradient boosting regression with least-squares loss and tree learners."""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy
from repro.mlkit.tree import DecisionTreeRegression
from repro.utils.seeding import make_rng


class GradientBoostingRegression(Regressor):
    """Stage-wise additive model of shallow regression trees."""

    def __init__(
        self,
        n_estimators: int = 80,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not (0 < learning_rate <= 1):
            raise ValueError("learning_rate must lie in (0, 1]")
        if not (0 < subsample <= 1):
            raise ValueError("subsample must lie in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.seed = seed
        self._trees: list[DecisionTreeRegression] = []
        self._base: float = 0.0

    def fit(self, X, y) -> "GradientBoostingRegression":
        X, y = check_xy(X, y)
        rng = make_rng(self.seed)
        n_samples = X.shape[0]
        self._base = float(y.mean())
        self._trees = []
        current = np.full(n_samples, self._base)
        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                size = max(2, int(self.subsample * n_samples))
                idx = rng.choice(n_samples, size=size, replace=False)
            else:
                idx = np.arange(n_samples)
            tree = DecisionTreeRegression(
                max_depth=self.max_depth, min_samples_split=4, min_samples_leaf=2
            )
            tree.fit(X[idx], residual[idx], rng=rng)
            update = tree.predict(X)
            current = current + self.learning_rate * update
            self._trees.append(tree)
        self._n_features = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        out = np.full(X.shape[0], self._base)
        for tree in self._trees:
            out = out + self.learning_rate * tree.predict(X)
        return out

    @property
    def n_trees(self) -> int:
        return len(self._trees)
