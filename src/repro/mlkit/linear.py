"""Ordinary least squares and ridge regression."""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy


class LinearRegression(Regressor):
    """Ordinary least squares (the paper's "OLS")."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _design(self, X: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return X
        return np.hstack([X, np.ones((X.shape[0], 1))])

    def fit(self, X, y) -> "LinearRegression":
        X, y = check_xy(X, y)
        design = self._design(X)
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coef_ = solution
            self.intercept_ = 0.0
        self._n_features = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self.coef_ is not None
        return X @ self.coef_ + self.intercept_


class RidgeRegression(Regressor):
    """L2-regularised least squares."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "RidgeRegression":
        X, y = check_xy(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            xc, yc = X, y
        gram = xc.T @ xc + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, xc.T @ yc)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        self._n_features = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self.coef_ is not None
        return X @ self.coef_ + self.intercept_
