"""CART-style decision-tree regression.

Used directly (the paper's "decision tree" regressor), as the base learner
of the random forest and gradient boosting, and as the feature-importance
estimator for the paper's counter-feature selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy


@dataclass
class _Node:
    """A node of the regression tree."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None


class DecisionTreeRegression(Regressor):
    """Variance-reduction CART regressor.

    Splits greedily on the (feature, threshold) pair that minimises the
    weighted child variance; accumulates per-feature impurity reduction as
    ``feature_importances_``.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._root: _Node | None = None
        self.feature_importances_: np.ndarray | None = None
        self._rng: np.random.Generator | None = None

    # -- fitting -----------------------------------------------------------------

    def fit(self, X, y, *, rng: np.random.Generator | None = None) -> "DecisionTreeRegression":
        X, y = check_xy(X, y)
        self._n_features = X.shape[1]
        self._rng = rng
        self._importances = np.zeros(X.shape[1])
        self._root = self._build(X, y, depth=0)
        total = self._importances.sum()
        self.feature_importances_ = (
            self._importances / total if total > 0 else np.zeros(X.shape[1])
        )
        return self

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        k = max(1, self.max_features)
        if self._rng is None:
            return np.arange(k)
        return self._rng.choice(n_features, size=k, replace=False)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Return (feature, threshold, impurity_decrease) or None."""
        n_samples, n_features = X.shape
        parent_var = float(np.var(y)) * n_samples
        best: tuple[int, float, float] | None = None
        for feature in self._candidate_features(n_features):
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            # Prefix sums for O(n) evaluation of every split position.
            csum = np.cumsum(ys)
            csum_sq = np.cumsum(ys**2)
            total_sum = csum[-1]
            total_sq = csum_sq[-1]
            for i in range(self.min_samples_leaf, n_samples - self.min_samples_leaf + 1):
                if i < 1 or i >= n_samples:
                    continue
                if xs[i - 1] == xs[i]:
                    continue
                left_n = i
                right_n = n_samples - i
                left_sum, left_sq = csum[i - 1], csum_sq[i - 1]
                right_sum = total_sum - left_sum
                right_sq = total_sq - left_sq
                left_var = left_sq - left_sum**2 / left_n
                right_var = right_sq - right_sum**2 / right_n
                decrease = parent_var - (left_var + right_var)
                if best is None or decrease > best[2]:
                    threshold = 0.5 * (xs[i - 1] + xs[i])
                    best = (int(feature), float(threshold), float(decrease))
        if best is None or best[2] <= 1e-12:
            return None
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if (
            depth >= self.max_depth
            or X.shape[0] < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold, decrease = split
        self._importances[feature] += decrease
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    # -- prediction ---------------------------------------------------------------

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self._root is not None
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                assert node.left is not None and node.right is not None
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out
