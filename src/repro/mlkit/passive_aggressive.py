"""Passive-aggressive regression (the paper's "PAR").

Online epsilon-insensitive updates (PA-I): a sample inside the epsilon
tube leaves the model unchanged (passive); otherwise the weights move just
enough to bring the sample onto the tube boundary, with the step clipped
by the aggressiveness parameter ``C``.
"""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy
from repro.utils.seeding import make_rng


class PassiveAggressiveRegression(Regressor):
    """PA-I regression with epsilon-insensitive loss."""

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        max_iter: int = 50,
        shuffle: bool = True,
        seed: int = 0,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        self.C = C
        self.epsilon = epsilon
        self.max_iter = max_iter
        self.shuffle = shuffle
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "PassiveAggressiveRegression":
        X, y = check_xy(X, y)
        n_samples, n_features = X.shape
        rng = make_rng(self.seed)
        w = np.zeros(n_features)
        b = 0.0
        for _ in range(self.max_iter):
            order = rng.permutation(n_samples) if self.shuffle else np.arange(n_samples)
            updated = False
            for i in order:
                x_i = X[i]
                error = y[i] - (w @ x_i + b)
                loss = abs(error) - self.epsilon
                if loss <= 0:
                    continue
                norm_sq = float(x_i @ x_i) + 1.0  # +1 for the intercept dimension
                tau = min(self.C, loss / norm_sq)
                step = np.sign(error) * tau
                w = w + step * x_i
                b = b + step
                updated = True
            if not updated:
                break
        self.coef_ = w
        self.intercept_ = b
        self._n_features = n_features
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self.coef_ is not None
        return X @ self.coef_ + self.intercept_
