"""A small, from-scratch regression toolkit.

The paper's first performance model feeds hardware-counter features into
ten off-the-shelf regression models (Section III-B).  No external ML
library is available offline, so this package implements the regressors
the paper evaluates — enough of each to reproduce Table IV's accuracy
comparison — with a scikit-learn-like ``fit``/``predict`` interface.
"""

from repro.mlkit.base import Regressor
from repro.mlkit.preprocessing import StandardScaler
from repro.mlkit.metrics import mean_squared_error, paper_accuracy, r2_score
from repro.mlkit.linear import LinearRegression, RidgeRegression
from repro.mlkit.theil_sen import TheilSenRegression
from repro.mlkit.passive_aggressive import PassiveAggressiveRegression
from repro.mlkit.knn import KNeighborsRegression
from repro.mlkit.tree import DecisionTreeRegression
from repro.mlkit.forest import RandomForestRegression
from repro.mlkit.boosting import GradientBoostingRegression
from repro.mlkit.svr import SVR
from repro.mlkit.ard import ARDRegression
from repro.mlkit.mlp import MLPRegression

__all__ = [
    "Regressor",
    "StandardScaler",
    "mean_squared_error",
    "paper_accuracy",
    "r2_score",
    "LinearRegression",
    "RidgeRegression",
    "TheilSenRegression",
    "PassiveAggressiveRegression",
    "KNeighborsRegression",
    "DecisionTreeRegression",
    "RandomForestRegression",
    "GradientBoostingRegression",
    "SVR",
    "ARDRegression",
    "MLPRegression",
    "default_regressors",
]


def default_regressors(seed: int = 0) -> dict[str, Regressor]:
    """The regressor zoo of the paper's Table IV, with default settings."""
    return {
        "gradient_boosting": GradientBoostingRegression(seed=seed),
        "k_neighbors": KNeighborsRegression(),
        "random_forest": RandomForestRegression(seed=seed),
        "decision_tree": DecisionTreeRegression(),
        "tsr": TheilSenRegression(seed=seed),
        "ols": LinearRegression(),
        "par": PassiveAggressiveRegression(seed=seed),
        "svr_linear": SVR(kernel="linear", seed=seed),
        "svr_poly": SVR(kernel="poly", seed=seed),
        "svr_rbf": SVR(kernel="rbf", seed=seed),
        "ard": ARDRegression(),
        "mlp_adam": MLPRegression(solver="adam", seed=seed),
        "mlp_sgd": MLPRegression(solver="sgd", seed=seed),
        "mlp_lbfgs": MLPRegression(solver="lbfgs", seed=seed),
    }
