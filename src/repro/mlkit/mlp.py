"""Multi-layer perceptron regression with SGD, Adam or L-BFGS training."""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.mlkit.base import Regressor, check_x, check_xy
from repro.utils.seeding import make_rng


class MLPRegression(Regressor):
    """A small fully-connected network (tanh hidden layers, linear output)."""

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (32, 16),
        solver: str = "adam",
        learning_rate: float = 1e-2,
        max_iter: int = 400,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if solver not in ("sgd", "adam", "lbfgs"):
            raise ValueError("solver must be 'sgd', 'adam' or 'lbfgs'")
        if not hidden_sizes or any(h < 1 for h in hidden_sizes):
            raise ValueError("hidden_sizes must be positive")
        if max_iter < 1 or learning_rate <= 0 or l2 < 0:
            raise ValueError("invalid hyper-parameters")
        self.hidden_sizes = tuple(hidden_sizes)
        self.solver = solver
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.seed = seed
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self._x_mean: np.ndarray | None = None
        self._x_scale: np.ndarray | None = None
        self._y_mean: float = 0.0
        self._y_scale: float = 1.0

    # -- parameter (de)serialisation for L-BFGS -----------------------------------

    def _layer_dims(self, n_features: int) -> list[tuple[int, int]]:
        dims = []
        previous = n_features
        for hidden in self.hidden_sizes:
            dims.append((previous, hidden))
            previous = hidden
        dims.append((previous, 1))
        return dims

    def _init_params(self, n_features: int, rng: np.random.Generator) -> None:
        self._weights = []
        self._biases = []
        for fan_in, fan_out in self._layer_dims(n_features):
            bound = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-bound, bound, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _flatten(self) -> np.ndarray:
        return np.concatenate(
            [w.ravel() for w in self._weights] + [b.ravel() for b in self._biases]
        )

    def _unflatten(self, theta: np.ndarray, n_features: int) -> None:
        dims = self._layer_dims(n_features)
        weights, biases = [], []
        offset = 0
        for fan_in, fan_out in dims:
            size = fan_in * fan_out
            weights.append(theta[offset : offset + size].reshape(fan_in, fan_out))
            offset += size
        for _, fan_out in dims:
            biases.append(theta[offset : offset + fan_out])
            offset += fan_out
        self._weights = weights
        self._biases = biases

    # -- forward / backward ---------------------------------------------------------

    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        current = X
        for i, (w, b) in enumerate(zip(self._weights, self._biases)):
            z = current @ w + b
            current = z if i == len(self._weights) - 1 else np.tanh(z)
            activations.append(current)
        return current.ravel(), activations

    def _loss_and_grad(self, X: np.ndarray, y: np.ndarray) -> tuple[float, list, list]:
        n = X.shape[0]
        pred, activations = self._forward(X)
        error = pred - y
        loss = 0.5 * float(error @ error) / n
        loss += 0.5 * self.l2 * sum(float((w**2).sum()) for w in self._weights)

        grad_w = [np.zeros_like(w) for w in self._weights]
        grad_b = [np.zeros_like(b) for b in self._biases]
        delta = (error / n).reshape(-1, 1)
        for layer in reversed(range(len(self._weights))):
            grad_w[layer] = activations[layer].T @ delta + self.l2 * self._weights[layer]
            grad_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self._weights[layer].T) * (1.0 - activations[layer] ** 2)
        return loss, grad_w, grad_b

    # -- training ---------------------------------------------------------------------

    def fit(self, X, y) -> "MLPRegression":
        X, y = check_xy(X, y)
        rng = make_rng(self.seed)
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._x_scale = scale
        Xs = (X - self._x_mean) / self._x_scale
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_scale

        n_features = X.shape[1]
        self._init_params(n_features, rng)

        if self.solver == "lbfgs":
            def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
                self._unflatten(theta, n_features)
                loss, grad_w, grad_b = self._loss_and_grad(Xs, ys)
                grad = np.concatenate(
                    [g.ravel() for g in grad_w] + [g.ravel() for g in grad_b]
                )
                return loss, grad

            result = optimize.minimize(
                objective,
                self._flatten(),
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.max_iter},
            )
            self._unflatten(result.x, n_features)
        else:
            m_w = [np.zeros_like(w) for w in self._weights]
            v_w = [np.zeros_like(w) for w in self._weights]
            m_b = [np.zeros_like(b) for b in self._biases]
            v_b = [np.zeros_like(b) for b in self._biases]
            beta1, beta2, eps = 0.9, 0.999, 1e-8
            for step in range(1, self.max_iter + 1):
                _, grad_w, grad_b = self._loss_and_grad(Xs, ys)
                if self.solver == "sgd":
                    lr = self.learning_rate / (1.0 + 0.01 * step)
                    for i in range(len(self._weights)):
                        self._weights[i] -= lr * grad_w[i]
                        self._biases[i] -= lr * grad_b[i]
                else:  # adam
                    lr = self.learning_rate
                    for i in range(len(self._weights)):
                        m_w[i] = beta1 * m_w[i] + (1 - beta1) * grad_w[i]
                        v_w[i] = beta2 * v_w[i] + (1 - beta2) * grad_w[i] ** 2
                        m_b[i] = beta1 * m_b[i] + (1 - beta1) * grad_b[i]
                        v_b[i] = beta2 * v_b[i] + (1 - beta2) * grad_b[i] ** 2
                        m_w_hat = m_w[i] / (1 - beta1**step)
                        v_w_hat = v_w[i] / (1 - beta2**step)
                        m_b_hat = m_b[i] / (1 - beta1**step)
                        v_b_hat = v_b[i] / (1 - beta2**step)
                        self._weights[i] -= lr * m_w_hat / (np.sqrt(v_w_hat) + eps)
                        self._biases[i] -= lr * m_b_hat / (np.sqrt(v_b_hat) + eps)

        self._n_features = n_features
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self._x_mean is not None and self._x_scale is not None
        Xs = (X - self._x_mean) / self._x_scale
        pred, _ = self._forward(Xs)
        return pred * self._y_scale + self._y_mean
