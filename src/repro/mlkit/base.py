"""Common regressor interface and input validation helpers."""

from __future__ import annotations

import abc

import numpy as np


def check_xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert training inputs to float arrays."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("need at least one training sample")
    if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
        raise ValueError("X and y must be finite")
    return X, y


def check_x(X, n_features: int) -> np.ndarray:
    """Validate prediction inputs."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2 or X.shape[1] != n_features:
        raise ValueError(f"expected shape (*, {n_features}), got {X.shape}")
    return X


class Regressor(abc.ABC):
    """Minimal scikit-learn-like regressor interface."""

    _n_features: int | None = None

    @abc.abstractmethod
    def fit(self, X, y) -> "Regressor":
        """Fit the model; returns self."""

    @abc.abstractmethod
    def predict(self, X) -> np.ndarray:
        """Predict targets for X."""

    @property
    def is_fitted(self) -> bool:
        return self._n_features is not None

    def _require_fitted(self) -> int:
        if self._n_features is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted yet")
        return self._n_features

    def score(self, X, y) -> float:
        """Coefficient of determination R^2 on (X, y)."""
        from repro.mlkit.metrics import r2_score

        return r2_score(np.asarray(y, dtype=float).ravel(), self.predict(X))
