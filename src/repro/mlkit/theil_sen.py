"""Theil-Sen regression (the paper's "TSR").

The classic estimator takes the median of slopes over pairs of points; the
multivariate generalisation used here fits least-squares models on many
random feature-dimensional subsets and takes the coordinate-wise (spatial)
median of the resulting coefficient vectors, which keeps the robustness
property without the combinatorial cost.
"""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy
from repro.utils.seeding import make_rng


class TheilSenRegression(Regressor):
    """Robust linear regression via median-of-subsamples."""

    def __init__(self, n_subsamples: int | None = None, max_subpopulation: int = 500,
                 seed: int = 0) -> None:
        if max_subpopulation < 1:
            raise ValueError("max_subpopulation must be positive")
        self.n_subsamples = n_subsamples
        self.max_subpopulation = max_subpopulation
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "TheilSenRegression":
        X, y = check_xy(X, y)
        n_samples, n_features = X.shape
        subset_size = self.n_subsamples or min(n_samples, n_features + 1)
        subset_size = max(min(subset_size, n_samples), min(n_samples, 2))
        rng = make_rng(self.seed)
        design = np.hstack([X, np.ones((n_samples, 1))])

        if n_samples <= subset_size:
            solution, *_ = np.linalg.lstsq(design, y, rcond=None)
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
            self._n_features = n_features
            return self

        solutions = []
        for _ in range(self.max_subpopulation):
            idx = rng.choice(n_samples, size=subset_size, replace=False)
            sub_design = design[idx]
            sub_y = y[idx]
            try:
                solution, *_ = np.linalg.lstsq(sub_design, sub_y, rcond=None)
            except np.linalg.LinAlgError:  # pragma: no cover - defensive
                continue
            if np.all(np.isfinite(solution)):
                solutions.append(solution)
        if not solutions:
            raise RuntimeError("Theil-Sen failed to fit any subsample")
        stacked = np.vstack(solutions)
        median = np.median(stacked, axis=0)
        self.coef_ = median[:-1]
        self.intercept_ = float(median[-1])
        self._n_features = n_features
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self.coef_ is not None
        return X @ self.coef_ + self.intercept_
