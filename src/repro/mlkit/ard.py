"""Bayesian linear regression with automatic relevance determination (ARD).

Evidence-maximisation (MacKay-style fixed-point) updates of one precision
hyper-parameter per weight; irrelevant features get their precision driven
to a large value and are effectively pruned.
"""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy


class ARDRegression(Regressor):
    """Sparse Bayesian linear regression (the paper's "Bayesian ARD")."""

    def __init__(
        self,
        max_iter: int = 200,
        tol: float = 1e-4,
        alpha_prune: float = 1e8,
    ) -> None:
        if max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        if tol <= 0 or alpha_prune <= 0:
            raise ValueError("tol and alpha_prune must be positive")
        self.max_iter = max_iter
        self.tol = tol
        self.alpha_prune = alpha_prune
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.alpha_: np.ndarray | None = None
        self.noise_precision_: float = 1.0

    def fit(self, X, y) -> "ARDRegression":
        X, y = check_xy(X, y)
        n_samples, n_features = X.shape
        x_mean = X.mean(axis=0)
        y_mean = float(y.mean())
        Xc = X - x_mean
        yc = y - y_mean

        alpha = np.ones(n_features)  # per-weight precision
        beta = 1.0 / (np.var(yc) + 1e-12)  # noise precision
        coef = np.zeros(n_features)
        gram = Xc.T @ Xc
        xty = Xc.T @ yc

        for _ in range(self.max_iter):
            active = alpha < self.alpha_prune
            if not np.any(active):
                coef = np.zeros(n_features)
                break
            A = np.diag(alpha[active])
            gram_a = gram[np.ix_(active, active)]
            sigma = np.linalg.inv(beta * gram_a + A)
            mean = beta * sigma @ xty[active]
            new_coef = np.zeros(n_features)
            new_coef[active] = mean

            gamma = 1.0 - alpha[active] * np.diag(sigma)
            new_alpha = alpha.copy()
            new_alpha[active] = gamma / (mean**2 + 1e-12)
            new_alpha = np.clip(new_alpha, 1e-10, self.alpha_prune * 10)

            residual = yc - Xc[:, active] @ mean
            denom = n_samples - gamma.sum()
            beta = max(denom, 1e-6) / (float(residual @ residual) + 1e-12)

            if np.max(np.abs(new_coef - coef)) < self.tol:
                coef = new_coef
                alpha = new_alpha
                break
            coef = new_coef
            alpha = new_alpha

        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        self.alpha_ = alpha
        self.noise_precision_ = float(beta)
        self._n_features = n_features
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self.coef_ is not None
        return X @ self.coef_ + self.intercept_

    def relevant_features(self) -> np.ndarray:
        """Indices of features the ARD prior kept (not pruned)."""
        if self.alpha_ is None:
            raise RuntimeError("model is not fitted yet")
        return np.where(self.alpha_ < self.alpha_prune)[0]
