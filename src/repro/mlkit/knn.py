"""k-nearest-neighbours regression (the paper's most accurate regressor)."""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy


class KNeighborsRegression(Regressor):
    """Distance-weighted k-NN regression with standardised features."""

    def __init__(self, n_neighbors: int = 5, weights: str = "distance") -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, X, y) -> "KNeighborsRegression":
        X, y = check_xy(X, y)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        self._X = (X - self._mean) / self._scale
        self._y = y
        self._n_features = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self._X is not None and self._y is not None
        assert self._mean is not None and self._scale is not None
        Xs = (X - self._mean) / self._scale
        k = min(self.n_neighbors, self._X.shape[0])
        predictions = np.empty(Xs.shape[0])
        for row, x in enumerate(Xs):
            distances = np.sqrt(((self._X - x) ** 2).sum(axis=1))
            nearest = np.argpartition(distances, k - 1)[:k]
            if self.weights == "uniform":
                predictions[row] = float(self._y[nearest].mean())
                continue
            d = distances[nearest]
            if np.any(d < 1e-12):
                exact = nearest[d < 1e-12]
                predictions[row] = float(self._y[exact].mean())
            else:
                w = 1.0 / d
                predictions[row] = float(np.average(self._y[nearest], weights=w))
        return predictions
