"""Epsilon-insensitive support vector regression with linear/poly/RBF kernels.

Trained in the "functional" primal: the prediction is a kernel expansion
over the training points and the coefficients are learned by stochastic
subgradient descent on the epsilon-insensitive loss with L2 (RKHS-norm)
regularisation.  This is a compact but genuine kernel SVR — the three
kernels the paper lists (linear, poly, RBF) are supported.
"""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy
from repro.utils.seeding import make_rng


class SVR(Regressor):
    """Kernel epsilon-SVR trained by stochastic subgradient descent."""

    def __init__(
        self,
        kernel: str = "rbf",
        C: float = 10.0,
        epsilon: float = 0.05,
        gamma: float | None = None,
        degree: int = 3,
        coef0: float = 1.0,
        max_iter: int = 300,
        learning_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        if kernel not in ("linear", "poly", "rbf"):
            raise ValueError("kernel must be 'linear', 'poly' or 'rbf'")
        if C <= 0 or epsilon < 0 or max_iter < 1 or learning_rate <= 0:
            raise ValueError("invalid hyper-parameters")
        self.kernel = kernel
        self.C = C
        self.epsilon = epsilon
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.seed = seed
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._bias: float = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._y_mean: float = 0.0
        self._y_scale: float = 1.0

    # -- kernels ------------------------------------------------------------------

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        if self.kernel == "poly":
            gamma = self.gamma or 1.0 / A.shape[1]
            return (gamma * (A @ B.T) + self.coef0) ** self.degree
        gamma = self.gamma or 1.0 / A.shape[1]
        a2 = (A**2).sum(axis=1)[:, None]
        b2 = (B**2).sum(axis=1)[None, :]
        sq = a2 + b2 - 2.0 * (A @ B.T)
        return np.exp(-gamma * np.maximum(sq, 0.0))

    # -- training ------------------------------------------------------------------

    def fit(self, X, y) -> "SVR":
        X, y = check_xy(X, y)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self._scale = scale
        Xs = (X - self._mean) / self._scale
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        ys = (y - self._y_mean) / self._y_scale

        n = Xs.shape[0]
        K = self._kernel_matrix(Xs, Xs)
        rng = make_rng(self.seed)
        alpha = np.zeros(n)
        bias = 0.0
        lam = 1.0 / (self.C * n)
        for iteration in range(self.max_iter):
            lr = self.learning_rate / (1.0 + 0.02 * iteration)
            order = rng.permutation(n)
            for i in order:
                pred = float(K[i] @ alpha) + bias
                error = pred - ys[i]
                # Subgradient of the epsilon-insensitive loss.
                if error > self.epsilon:
                    grad = 1.0
                elif error < -self.epsilon:
                    grad = -1.0
                else:
                    grad = 0.0
                # RKHS-norm regularisation shrinks every coefficient.
                alpha *= 1.0 - lr * lam
                if grad != 0.0:
                    alpha[i] -= lr * grad
                    bias -= lr * grad

        self._X = Xs
        self._alpha = alpha
        self._bias = bias
        self._n_features = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        assert self._X is not None and self._alpha is not None
        assert self._mean is not None and self._scale is not None
        Xs = (X - self._mean) / self._scale
        K = self._kernel_matrix(Xs, self._X)
        ys = K @ self._alpha + self._bias
        return ys * self._y_scale + self._y_mean

    @property
    def n_support_(self) -> int:
        """Number of training points with non-negligible coefficients."""
        if self._alpha is None:
            return 0
        return int(np.sum(np.abs(self._alpha) > 1e-8))
