"""Random forest regression: bagged decision trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.mlkit.base import Regressor, check_x, check_xy
from repro.mlkit.tree import DecisionTreeRegression
from repro.utils.seeding import make_rng


class RandomForestRegression(Regressor):
    """Bootstrap-aggregated CART trees."""

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: str | int | None = "sqrt",
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTreeRegression] = []
        self.feature_importances_: np.ndarray | None = None

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        raise ValueError(f"unknown max_features: {self.max_features!r}")

    def fit(self, X, y) -> "RandomForestRegression":
        X, y = check_xy(X, y)
        n_samples, n_features = X.shape
        rng = make_rng(self.seed)
        max_features = self._resolve_max_features(n_features)
        self._trees = []
        importances = np.zeros(n_features)
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeRegression(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
            )
            tree.fit(X[idx], y[idx], rng=rng)
            self._trees.append(tree)
            assert tree.feature_importances_ is not None
            importances += tree.feature_importances_
        self.feature_importances_ = importances / self.n_estimators
        self._n_features = n_features
        return self

    def predict(self, X) -> np.ndarray:
        n = self._require_fitted()
        X = check_x(X, n)
        if not self._trees:
            raise RuntimeError("forest has no trees")
        return np.mean([tree.predict(X) for tree in self._trees], axis=0)
