"""Regression metrics (thin wrappers over the shared statistics helpers)."""

from __future__ import annotations

import numpy as np

from repro.utils.stats import paper_accuracy as _paper_accuracy
from repro.utils.stats import r_squared


def mean_squared_error(y_true, y_pred) -> float:
    t = np.asarray(y_true, dtype=float).ravel()
    p = np.asarray(y_pred, dtype=float).ravel()
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("empty input")
    return float(np.mean((t - p) ** 2))


def r2_score(y_true, y_pred) -> float:
    return r_squared(np.asarray(y_true, dtype=float).ravel(),
                     np.asarray(y_pred, dtype=float).ravel())


def paper_accuracy(y_true, y_pred) -> float:
    """The paper's modelling-accuracy metric: 1 - mean(|error| / truth)."""
    return _paper_accuracy(np.asarray(y_true, dtype=float).ravel(),
                           np.asarray(y_pred, dtype=float).ravel())
