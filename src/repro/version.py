"""Single source of truth for the package version.

Bump on every change that can alter computed results (analytic models,
experiment decomposition, schedulers): the sweep result cache keys every
entry on this string, so a bump is what invalidates stale on-disk
results.
"""

__version__ = "0.10.0"
