#!/usr/bin/env python
"""Reproduce the preliminary GPU study (Section VII).

Sweeps the CUDA launch configuration of two TensorFlow operations on the
simulated P100 (Fig. 5) and measures the benefit of co-running kernels in
separate streams (Table VII).

Run with::

    python examples/gpu_corun_study.py
"""

from __future__ import annotations

from repro.experiments import fig5_gpu_intraop, table7_gpu_corun


def main() -> int:
    print("Sweeping CUDA launch configurations on the simulated Tesla P100...")
    fig5 = fig5_gpu_intraop.run()
    print()
    print(fig5_gpu_intraop.format_report(fig5))

    print()
    print("Co-running two instances of each operation in separate CUDA streams...")
    table7 = table7_gpu_corun.run()
    print()
    print(table7_gpu_corun.format_report(table7))

    print()
    print("Conclusion (as in the paper): the default launch configuration is not")
    print("optimal on GPU either, and stream-level co-running recovers the idle")
    print("resources a single kernel leaves behind.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
