"""Compare fleet placement policies on one job trace.

Run with::

    PYTHONPATH=src python examples/fleet_study.py [num_jobs] [seed]

Places the same deterministic trace across the five-machine reference
fleet under every registered policy and prints makespans, waits and the
workload pairings the interference tracker blacklisted along the way.
One shared estimator means each distinct (machine, job mix) step-time
is simulated once, no matter how many policies replay it.
"""

from __future__ import annotations

import sys

from repro.api import DEFAULT_FLEET
from repro.fleet import (
    FleetSimulator,
    StepTimeEstimator,
    available_policies,
    generate_trace,
)


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    jobs = generate_trace(num_jobs, seed=seed)
    print(
        f"{num_jobs} jobs (seed {seed}) over {len(DEFAULT_FLEET)} machines: "
        f"{', '.join(DEFAULT_FLEET)}\n"
    )
    estimator = StepTimeEstimator()
    baseline = None
    for policy in available_policies():
        simulator = FleetSimulator(DEFAULT_FLEET, policy=policy, estimator=estimator)
        result = simulator.run(jobs)
        if policy == "first-fit":
            baseline = result.makespan
        speedup = f" ({baseline / result.makespan:.2f}x vs first-fit)" if baseline else ""
        print(
            f"{policy:>20}: makespan {result.makespan:7.2f} s{speedup}, "
            f"mean wait {result.mean_wait_time:5.2f} s, "
            f"{sum(m.corun_rounds for m in result.machine_reports)} co-run rounds"
        )
        if result.blacklisted_pairs:
            pairs = ", ".join(f"{a}+{b}" for a, b in result.blacklisted_pairs)
            print(f"{'':>22}blacklisted pairings: {pairs}")
    print(
        f"\nstep-time estimates simulated: {estimator.stats.computed} "
        f"(served {estimator.stats.requests} requests across "
        f"{len(available_policies())} policies)"
    )


if __name__ == "__main__":
    main()
