#!/usr/bin/env python
"""Parallel sweep engine demo: fan experiments out and reuse cached results.

Runs a slice of the paper's experiment suite twice through the sweep
engine — first with a cold on-disk cache (tasks execute, fanned out over
the process backend), then warm (every task is served from the cache
without touching the simulator) — and prints the executor statistics so
the effect is visible.

Run with::

    python examples/parallel_sweep.py [jobs]

The same machinery backs the CLI: ``repro-experiments --jobs 8`` fans
tasks out over 8 workers, ``--no-cache`` forces recomputation, and
``--cache-dir`` relocates the store (default ``.sweep_cache``, or
``$REPRO_SWEEP_CACHE_DIR``).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

from repro.experiments import table1_parallelism, table2_input_size
from repro.sweep import SweepCache, SweepExecutor

EXPERIMENTS = (
    ("table2", table2_input_size, {}),
    ("table1", table1_parallelism, {"models": ("dcgan",), "reduced": True}),
)


def run_pass(label: str, executor: SweepExecutor) -> None:
    start = time.perf_counter()
    for name, module, kwargs in EXPERIMENTS:
        module.run(executor=executor, **kwargs)
    elapsed = time.perf_counter() - start
    print(
        f"{label:<12} {elapsed * 1e3:7.1f} ms   "
        f"tasks executed: {executor.stats.executed:3d}   "
        f"cache hits: {executor.stats.cache_hits:3d}"
    )


def main() -> int:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else (os.cpu_count() or 1)
    with tempfile.TemporaryDirectory(prefix="repro-sweep-demo-") as cache_dir:
        print(f"process backend, {jobs} jobs, cache at {cache_dir}")
        run_pass("cold cache", SweepExecutor("process", jobs=jobs, cache=SweepCache(cache_dir)))
        run_pass("warm cache", SweepExecutor("process", jobs=jobs, cache=SweepCache(cache_dir)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
