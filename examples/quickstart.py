#!/usr/bin/env python
"""Quickstart: schedule one ResNet-50 training step with the paper's runtime.

Builds the ResNet-50 training-step graph, profiles its operations with the
hill-climbing performance model, schedules the step with Strategies 1-4 on
the simulated KNL node, and compares against the TensorFlow-recommended
configuration (intra-op = 68 threads, inter-op = 1).

Run with::

    python examples/quickstart.py [model]

where ``model`` is one of resnet50, dcgan, inception_v3, lstm.
"""

from __future__ import annotations

import sys

from repro import available_models, quick_schedule


def main() -> int:
    model = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    if model not in available_models():
        print(f"unknown model {model!r}; choose one of {', '.join(available_models())}")
        return 2

    print(f"Scheduling one {model} training step on the simulated KNL node...")
    outcome = quick_schedule(model)

    print()
    print(f"model                      : {outcome.model}")
    print(f"profiled signatures        : {outcome.profiling_signatures}")
    print(f"step time (our runtime)    : {outcome.step_time * 1e3:8.1f} ms")
    print(f"step time (recommendation) : {outcome.recommendation_time * 1e3:8.1f} ms")
    print(f"speedup vs recommendation  : {outcome.speedup_vs_recommendation:8.2f}x")
    print(f"average co-running ops     : {outcome.average_corunning:8.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
