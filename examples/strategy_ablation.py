#!/usr/bin/env python
"""Reproduce the Fig. 3 strategy ablation for one model.

Runs the TensorFlow recommendation, Strategies 1+2, Strategies 1+2+3 and
the full runtime (plus exhaustive manual tuning) on one training step and
prints the per-strategy contributions, mirroring Fig. 3(a-d) of the paper.

Run with::

    python examples/strategy_ablation.py [model] [--full]

``--full`` uses the full-size model graph (slower); the default uses the
reduced variant so the example finishes in seconds.
"""

from __future__ import annotations

import sys

from repro.baselines.manual_opt import ManualOptimizer
from repro.core.runtime import TrainingRuntime
from repro.experiments.common import build_paper_model, default_machine
from repro.models import available_models
from repro.utils.tables import TextTable


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    model = args[0] if args else "dcgan"
    full = "--full" in sys.argv
    if model not in available_models():
        print(f"unknown model {model!r}; choose one of {', '.join(available_models())}")
        return 2

    machine = default_machine()
    graph = build_paper_model(model, reduced=not full)
    print(f"{graph}  on  {machine.describe()}")
    print("Profiling and scheduling (this runs four schedules plus a manual grid search)...")

    runtime = TrainingRuntime(machine)
    comparison = runtime.compare_strategies(
        graph,
        include_manual=True,
        manual_optimizer=ManualOptimizer(
            machine, intra_candidates=(2, 16, 34, 68), inter_candidates=(1, 2, 4)
        ),
    )
    speedups = comparison.speedups_vs_recommendation()
    increments = comparison.incremental_speedups()

    table = TextTable(["configuration", "step time (ms)", "speedup vs recommendation"],
                      title=f"Strategy ablation for {model}")
    table.add_row(["TensorFlow recommendation", comparison.recommendation * 1e3, 1.0])
    table.add_row(["Strategies 1+2", comparison.strategies_1_2 * 1e3,
                   speedups["strategies_1_2"]])
    table.add_row(["Strategies 1+2+3", comparison.strategies_1_2_3 * 1e3,
                   speedups["strategies_1_2_3"]])
    table.add_row(["Our runtime (1+2+3+4)", comparison.all_strategies * 1e3,
                   speedups["all_strategies"]])
    assert comparison.manual is not None
    table.add_row(
        [
            f"Manual optimum (intra={comparison.manual.best_intra}, "
            f"inter={comparison.manual.best_inter})",
            comparison.manual.best_time * 1e3,
            speedups["manual"],
        ]
    )
    print()
    print(table.render())
    print()
    print("Incremental contributions (Fig. 3a-c):")
    print(f"  Strategies 1+2 vs recommendation : {increments['strategies_1_2_vs_recommendation']:.2f}x")
    print(f"  Strategy 3 vs Strategies 1+2     : {increments['strategy_3_vs_strategies_1_2']:.2f}x")
    print(f"  Strategy 4 vs Strategy 3         : {increments['strategy_4_vs_strategy_3']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
