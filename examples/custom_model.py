#!/usr/bin/env python
"""Schedule a user-defined model with the runtime.

The paper's runtime is model-agnostic: anything expressed as an
operation-level dataflow graph can be profiled and scheduled.  This
example builds a small custom CNN + attention-style workload by hand with
the :class:`~repro.graph.builder.GraphBuilder`, registers a custom
operation type with its own cost estimator, and compares the runtime
against the TensorFlow recommendation and manual tuning.

Run with::

    python examples/custom_model.py
"""

from __future__ import annotations

from repro.baselines.manual_opt import ManualOptimizer
from repro.baselines.tf_default import recommended_policy
from repro.core.runtime import TrainingRuntime
from repro.graph.builder import GraphBuilder
from repro.graph.shapes import TensorShape
from repro.hardware.knl import knl_machine
from repro.ops.characteristics import OpCharacteristics
from repro.ops.registry import register_op
from repro.profiling.profiler import StepProfiler
from repro.profiling.reports import format_op_type_report


def register_custom_attention_op() -> None:
    """Register a cost estimator for a fused attention operation.

    The registry is the extension point for "future changes of operations"
    the paper's hill-climbing model accommodates without retraining.
    """

    def estimator(op) -> OpCharacteristics:
        batch, seq, dim = op.inputs[0].dims
        flops = 4.0 * batch * seq * seq * dim  # QK^T and PV matmuls
        bytes_touched = 3.0 * op.inputs[0].num_bytes + op.output.num_bytes
        return OpCharacteristics(
            flops=flops,
            bytes_touched=float(bytes_touched),
            working_set=float(min(bytes_touched, 4 * 1024 * 1024)),
            serial_fraction=0.04,
            reuse_potential=0.7,
            parallel_grains=batch * seq,
            per_thread_overhead=8e-5,
            memory_bound=0.4,
        )

    register_op("FusedAttention", estimator, overwrite=True)


def build_custom_graph() -> "DataflowGraph":  # noqa: F821 - doc only
    """A toy two-branch network: a conv trunk and an attention branch."""
    builder = GraphBuilder("custom-cnn-attention")
    image = TensorShape((32, 32, 32, 64))
    tokens = TensorShape((32, 196, 256))

    stem = builder.add("Conv2D", inputs=[image], output=image, attrs={"kernel": (3, 3)})
    conv_branch = stem
    shape = image
    for index in range(3):
        conv_branch = builder.add(
            "Conv2D", inputs=[shape], output=shape, deps=[conv_branch],
            attrs={"kernel": (3, 3)}, scope=f"trunk{index}",
        )
        conv_branch = builder.add(
            "Relu", inputs=[shape], output=shape, deps=[conv_branch], scope=f"trunk{index}",
        )

    attention = builder.add("FusedAttention", inputs=[tokens], output=tokens, deps=[stem])
    attention = builder.add("FusedAttention", inputs=[tokens], output=tokens, deps=[attention])

    merged_shape = TensorShape((32, 1024))
    pooled = builder.add("Mean", inputs=[shape], output=merged_shape, deps=[conv_branch])
    projected = builder.add(
        "MatMul", inputs=[TensorShape((32, 196 * 256)), TensorShape((196 * 256, 1024))],
        output=merged_shape, deps=[attention],
    )
    builder.add("Add", inputs=[merged_shape, merged_shape], output=merged_shape,
                deps=[pooled, projected])
    return builder.build()


def main() -> int:
    register_custom_attention_op()
    machine = knl_machine()
    graph = build_custom_graph()
    print(f"Custom workload: {graph}")

    runtime = TrainingRuntime(machine)
    report = runtime.run(graph)

    print()
    print(f"our runtime     : {report.step_time * 1e3:8.2f} ms")
    print(f"recommendation  : {report.recommendation_time * 1e3:8.2f} ms")
    print(f"speedup         : {report.speedup_vs_recommendation:8.2f}x")

    manual = ManualOptimizer(
        machine, intra_candidates=(8, 16, 34, 68), inter_candidates=(1, 2, 4)
    ).search(graph)
    print(
        f"manual tuning   : {manual.best_time * 1e3:8.2f} ms "
        f"(intra={manual.best_intra}, inter={manual.best_inter})"
    )

    print()
    profiler = StepProfiler(report.recommendation_result.trace)
    print(format_op_type_report(profiler, top=6,
                                title="Most time-consuming ops under the recommendation"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
